(* The /proc observability surface (PR 3): run a scripted workload with
   tracing armed, then read every file back through the ordinary file API
   and check the figures parse and agree with the OCaml-level state
   (Kernel.stats_snapshot, Trace, Fault, Netfs.rpc_stats).

   Counters keep moving while we read them — resolving "/proc/..." itself
   bumps lookup statistics — so cross-checks are monotonic (parsed value <=
   a snapshot taken afterwards), except for subsystems a procfs read cannot
   touch (fault sites, netfs RPCs), which must match exactly. *)

open Dcache_types
open Kit
module Kernel_procfs = Dcache_syscalls.Kernel_procfs
module Netfs = Dcache_fs.Netfs
module Fault = Dcache_util.Fault
module Trace = Dcache_util.Trace
module Vclock = Dcache_util.Vclock

(* --- tiny line-format parsers --- *)

let lines s = List.filter (fun l -> l <> "") (String.split_on_char '\n' s)

(* "key value" integer lines; anything else is skipped. *)
let kv_lines s =
  List.filter_map
    (fun line ->
      match String.split_on_char ' ' line with
      | [ k; v ] -> (
        match int_of_string_opt v with Some n -> Some (k, n) | None -> None)
      | _ -> None)
    (lines s)

let assoc_or_fail what k l =
  match List.assoc_opt k l with
  | Some v -> v
  | None -> Alcotest.failf "%s: no %S line" what k

(* Pull the "class <name> ..." histogram line and read an int field out of
   its "key value key value ..." tail. *)
let hist_line body cls =
  let prefix = "class " ^ cls ^ " " in
  let plen = String.length prefix in
  match
    List.find_opt
      (fun l -> String.length l >= plen && String.sub l 0 plen = prefix)
      (lines body)
  with
  | Some l -> l
  | None -> Alcotest.failf "no histogram line for class %s" cls

let hist_field line key =
  let rec go = function
    | k :: v :: _ when k = key -> int_of_string v
    | _ :: rest -> go rest
    | [] -> Alcotest.failf "field %s missing in %S" key line
  in
  go (String.split_on_char ' ' line)

(* JSON validation lives in Kit ([Kit.json_valid]), shared with t_trace. *)

let read p path = get ("read " ^ path) (S.read_file p path)

(* --- the scripted workload + full surface read-back --- *)

let test_proc_observability_surface () =
  Trace.reset ();
  Trace.arm ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disarm ();
      Trace.reset ())
    (fun () ->
      let faults = Fault.create ~seed:5 () in
      let kernel, p = ram_kernel ~config:Config.optimized () in
      (* A netfs mount so /proc/netfs/rpc has something to report. *)
      let vclock = Vclock.create () in
      let server = Netfs.server ~faults ~clock:vclock (Dcache_fs.Ramfs.create ()) in
      let client = Netfs.client ~protocol:Netfs.Stateful server in
      get "mkdir /net" (S.mkdir_p p "/net");
      get "mount net" (S.mount_fs p client "/net");
      get "mkdir /proc" (S.mkdir_p p "/proc");
      get "mount proc"
        (S.mount_fs p (Kernel_procfs.make ~faults ~netfs:server kernel) "/proc");
      (* Maildir-ish workload: deliver, warm re-stats, negatives, rename and
         chmod churn — every outcome class and cause the surface reports. *)
      get "tree" (S.mkdir_p p "/mail/cur");
      for i = 1 to 20 do
        get "deliver" (S.write_file p (Printf.sprintf "/mail/cur/msg%d" i) "x")
      done;
      for _ = 1 to 5 do
        for i = 1 to 20 do
          ignore (get "warm stat" (S.stat p (Printf.sprintf "/mail/cur/msg%d" i)))
        done
      done;
      for _ = 1 to 10 do
        expect_err Errno.ENOENT "absent" (S.stat p "/mail/cur/absent")
      done;
      get "rename" (S.rename p "/mail/cur/msg1" "/mail/cur/msg1.read");
      get "chmod" (S.chmod p "/mail/cur" 0o700);
      ignore (get "re-stat renamed" (S.stat p "/mail/cur/msg1.read"));
      (* Netfs traffic with one forced drop: the first RPC after arming is
         lost, the client times out and retries. *)
      get "netfs write" (S.write_file p "/net/f" "hello");
      Fault.arm (Fault.site faults "netfs.drop") (Fault.Nth 1);
      get "netfs write 2" (S.write_file p "/net/g" "world");
      ignore (get "netfs stat" (S.stat p "/net/g"));

      (* /proc/dcache/stats: parses, live, and every counter figure is
         bounded by a later Kernel snapshot.  [dlht_] lines are load gauges,
         not counters: cross-check those against Dlht.occupancy instead. *)
      let stats = kv_lines (read p "/proc/dcache/stats") in
      let dlht =
        Option.get (Dcache_core.Dlht.of_namespace_opt (Kernel.init_ns kernel))
      in
      let occ = Dcache_core.Dlht.occupancy dlht in
      Alcotest.(check bool) "stats report fastpath hits" true
        (assoc_or_fail "stats" "fastpath_hit" stats > 0);
      let is_dlht k = String.length k >= 5 && String.sub k 0 5 = "dlht_" in
      let snapshot = Kernel.stats_snapshot kernel in
      List.iter
        (fun (k, v) ->
          if not (is_dlht k) then begin
            let now = match List.assoc_opt k snapshot with Some n -> n | None -> 0 in
            if v < 0 || v > now then
              Alcotest.failf "counter %s: procfs read %d, later snapshot %d" k v now
          end)
        stats;
      (* The DLHT gauges agree with the table read directly (the stats read
         itself populates /proc dentries, so gauges may only have grown by
         the time of the direct read). *)
      Alcotest.(check int) "dlht attached" 1 (assoc_or_fail "stats" "dlht_attached" stats);
      Alcotest.(check bool) "dlht population live and bounded" true
        (let v = assoc_or_fail "stats" "dlht_population" stats in
         v > 0 && v <= Dcache_core.Dlht.population dlht);
      Alcotest.(check int) "dlht bucket count" occ.Dcache_core.Dlht.occ_buckets
        (assoc_or_fail "stats" "dlht_buckets" stats);
      Alcotest.(check bool) "dlht longest chain live and bounded" true
        (let v = assoc_or_fail "stats" "dlht_longest_chain" stats in
         v >= 1 && v <= occ.Dcache_core.Dlht.occ_longest);
      Alcotest.(check int) "dlht resizes agree"
        (Dcache_core.Dlht.resizes dlht)
        (assoc_or_fail "stats" "dlht_resizes" stats);
      Alcotest.(check int) "no sigless scans in a healthy run" 0
        (assoc_or_fail "stats" "dlht_sigless_scans" stats);

      (* /proc/dcache/histograms: the three classes this workload exercises
         are non-empty with ordered, positive percentiles. *)
      let hist = read p "/proc/dcache/histograms" in
      List.iter
        (fun cls ->
          let line = hist_line hist cls in
          let n = hist_field line "n" in
          let p50 = hist_field line "p50" in
          let p90 = hist_field line "p90" in
          let p99 = hist_field line "p99" in
          let vmax = hist_field line "max" in
          Alcotest.(check bool) (cls ^ " populated") true (n > 0);
          Alcotest.(check bool) (cls ^ " p50 positive") true (p50 > 0);
          Alcotest.(check bool)
            (cls ^ " percentiles ordered") true
            (p50 <= p90 && p90 <= p99 && p99 <= vmax))
        [ "fastpath_hit"; "fallback_hit"; "negative" ];
      Alcotest.(check int) "no EIO was recorded" 0
        (hist_field (hist_line hist "eio") "n");
      (* Histogram counts never exceed the corresponding kernel counters
         (each timed outcome bumped its counter too). *)
      let snapshot = Kernel.stats_snapshot kernel in
      Alcotest.(check bool) "fast-hit histogram bounded by counter" true
        (hist_field (hist_line hist "fastpath_hit") "n"
        <= assoc_or_fail "snapshot" "fastpath_hit" snapshot);
      Alcotest.(check bool) "fallback histogram bounded by counter" true
        (hist_field (hist_line hist "fallback_hit") "n"
        <= assoc_or_fail "snapshot" "fastpath_fallback" snapshot);

      (* /proc/dcache/causes: the churn above must attribute misses. *)
      let causes = kv_lines (read p "/proc/dcache/causes") in
      List.iter
        (fun k ->
          Alcotest.(check bool) ("cause " ^ k ^ " seen") true
            (assoc_or_fail "causes" k causes > 0))
        [ "cold"; "invalidated_by_rename"; "invalidated_by_chmod" ];
      List.iteri
        (fun c k ->
          let v = assoc_or_fail "causes" k causes in
          Alcotest.(check bool) ("cause " ^ k ^ " bounded") true
            (v >= 0 && v <= Trace.cause_count c))
        (List.init Trace.n_causes Trace.cause_name);

      (* /proc/dcache/trace: armed, non-empty, and every event line names a
         known event. *)
      let trace_body = read p "/proc/dcache/trace" in
      Alcotest.(check bool) "ring reports armed" true
        (contains_substring trace_body "armed true");
      Alcotest.(check bool) "ring recorded events" true
        (assoc_or_fail "trace" "recorded" (kv_lines trace_body) > 0);
      let known = List.init Trace.n_events Trace.event_name in
      let event_lines =
        List.filter_map
          (fun line ->
            match String.split_on_char ' ' line with
            | [ s; ts; name; arg ]
              when int_of_string_opt s <> None
                   && int_of_string_opt ts <> None
                   && int_of_string_opt arg <> None ->
              Some name
            | _ -> None)
          (lines trace_body)
      in
      Alcotest.(check bool) "trace shows event lines" true (event_lines <> []);
      List.iter
        (fun name ->
          Alcotest.(check bool) ("known event " ^ name) true (List.mem name known))
        event_lines;

      (* /proc/faults: the armed-then-fired drop site, figures exact. *)
      let faults_body = read p "/proc/faults" in
      Alcotest.(check bool) "injector seed" true
        (contains_substring faults_body "seed 5");
      let drop = Fault.site faults "netfs.drop" in
      Alcotest.(check bool) "drop site line" true
        (contains_substring faults_body
           (Printf.sprintf "site netfs.drop schedule off arrivals %d injected %d"
              (Fault.arrivals drop) (Fault.injected drop)));
      Alcotest.(check bool) "the drop fired" true (Fault.injected drop >= 1);

      (* /proc/netfs/rpc: exact agreement with the server's stats (a procfs
         read cannot generate RPCs). *)
      let rpc = kv_lines (read p "/proc/netfs/rpc") in
      let s = Netfs.rpc_stats server in
      Alcotest.(check int) "rpcs" (Netfs.rpc_count server)
        (assoc_or_fail "rpc" "rpcs" rpc);
      Alcotest.(check int) "drops" s.Netfs.rs_drops (assoc_or_fail "rpc" "drops" rpc);
      Alcotest.(check int) "retries" s.Netfs.rs_retries
        (assoc_or_fail "rpc" "retries" rpc);
      Alcotest.(check int) "giveups" s.Netfs.rs_giveups
        (assoc_or_fail "rpc" "giveups" rpc);
      Alcotest.(check int) "drc_hits" s.Netfs.rs_drc_hits
        (assoc_or_fail "rpc" "drc_hits" rpc);
      Alcotest.(check bool) "traffic flowed" true
        (assoc_or_fail "rpc" "rpcs" rpc > 0);
      Alcotest.(check bool) "the drop cost a retry" true
        (s.Netfs.rs_drops >= 1 && s.Netfs.rs_retries >= 1);
      Alcotest.(check int) "partitions" s.Netfs.rs_partitions
        (assoc_or_fail "rpc" "partitions" rpc);
      Alcotest.(check int) "crashes" s.Netfs.rs_crashes
        (assoc_or_fail "rpc" "crashes" rpc);
      Alcotest.(check int) "fenced" s.Netfs.rs_fenced (assoc_or_fail "rpc" "fenced" rpc);
      (* The per-site fault tallies enumerate the server's link exactly. *)
      let rpc_body = read p "/proc/netfs/rpc" in
      let netfs_sites = Netfs.fault_sites server in
      Alcotest.(check int) "four link sites" 4 (List.length netfs_sites);
      Alcotest.(check int) "fault_sites count" (List.length netfs_sites)
        (assoc_or_fail "rpc" "fault_sites" rpc);
      List.iter
        (fun site ->
          Alcotest.(check bool)
            ("per-site line for " ^ Fault.name site)
            true
            (contains_substring rpc_body
               (Printf.sprintf "site %s arrivals %d injected %d" (Fault.name site)
                  (Fault.arrivals site) (Fault.injected site))))
        netfs_sites;

      (* /proc/netfs/leases: the lease book (§3.7), figures exact. *)
      let leases_body = read p "/proc/netfs/leases" in
      let leases = kv_lines leases_body in
      Alcotest.(check int) "epoch" (Netfs.epoch server)
        (assoc_or_fail "leases" "epoch" leases);
      Alcotest.(check int) "ttl" (Netfs.lease_ttl_ns server)
        (assoc_or_fail "leases" "lease_ttl_ns" leases);
      Alcotest.(check int) "skew" (Netfs.lease_skew_ns server)
        (assoc_or_fail "leases" "lease_skew_ns" leases);
      Alcotest.(check int) "grace" (Netfs.grace_ns server)
        (assoc_or_fail "leases" "grace_ns" leases);
      Alcotest.(check int) "grant gauge" (Netfs.grant_count server)
        (assoc_or_fail "leases" "grants" leases);
      Alcotest.(check int) "client count" (List.length (Netfs.clients server))
        (assoc_or_fail "leases" "clients" leases);
      Alcotest.(check bool) "stateful traffic earned leases" true
        (assoc_or_fail "leases" "grants" leases > 0);
      List.iter
        (fun c ->
          let ls = Netfs.lease_stats server c in
          Alcotest.(check bool)
            (Printf.sprintf "client %d lease line" (Netfs.client_id c))
            true
            (contains_substring leases_body
               (Printf.sprintf
                  "client %d epoch %d granted %d live %d gate_live %d gate_expired %d \
                   gate_miss %d breaks %d fences %d"
                  (Netfs.client_id c) (Netfs.client_epoch c) ls.Netfs.ls_grants
                  ls.Netfs.ls_live ls.Netfs.ls_gate_live ls.Netfs.ls_gate_expired
                  ls.Netfs.ls_gate_miss ls.Netfs.ls_breaks ls.Netfs.ls_fences)))
        (Netfs.clients server))

(* --- prefix-resume observability (§3.5) ---

   Drive the three §3.5 outcome classes — resumed cold misses, a
   negative-ancestor fast-fail, DIR_COMPLETE fast-fails — then read the new
   counters, the resume-depth histogram and the summary gauges back through
   /proc and cross-check them against the kernel-side figures.  The Chrome
   dump must stay valid JSON with the new event kinds present. *)

let test_prefix_resume_surface () =
  Trace.reset ();
  Trace.arm ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disarm ();
      Trace.reset ())
    (fun () ->
      let kernel, p = ram_kernel ~config:Config.optimized () in
      get "mkdir /proc" (S.mkdir_p p "/proc");
      get "mount proc" (S.mount_fs p (Kernel_procfs.make kernel) "/proc");
      let deep = "/p0/p1/p2/p3/p4/p5/p6/p7/p8/p9/p10/p11" in
      get "chain" (S.mkdir_p p deep);
      for i = 1 to 30 do
        get "leaf" (S.write_file p (Printf.sprintf "%s/m%d" deep i) "x")
      done;
      (* Purge, re-warm only the chain: the leaf stats below are cold DLHT
         misses with twelve cached ancestors — prefix-resumed walks. *)
      Kernel.drop_caches kernel;
      ignore (get "warm chain" (S.stat p deep));
      for i = 1 to 30 do
        ignore (get "cold leaf" (S.stat p (Printf.sprintf "%s/m%d" deep i)))
      done;
      (* A walked negative under the deep dir, then a path *below* it: the
         second lookup fast-fails from the cached negative ancestor. *)
      expect_err Errno.ENOENT "ghost" (S.stat p (deep ^ "/ghost"));
      expect_err Errno.ENOENT "below ghost" (S.stat p (deep ^ "/ghost/a/b"));
      (* DIR_COMPLETE fast-fail: complete the dir, then probe fresh absent
         names (no negative dentry exists — the verdict comes from
         completeness of the deepest cached ancestor). *)
      ignore (get "readdir" (S.readdir_path p deep));
      for i = 1 to 10 do
        expect_err Errno.ENOENT "absent" (S.stat p (Printf.sprintf "%s/none%d" deep i))
      done;

      let stats = kv_lines (read p "/proc/dcache/stats") in
      let resumes = assoc_or_fail "stats" "fastpath_prefix_resume" stats in
      let negfails = assoc_or_fail "stats" "fastpath_prefix_negfail" stats in
      Alcotest.(check bool) "resumes reported" true (resumes >= 30);
      Alcotest.(check bool) "negative fast-fails reported" true (negfails >= 11);
      let snapshot = Kernel.stats_snapshot kernel in
      let snap k = match List.assoc_opt k snapshot with Some v -> v | None -> 0 in
      Alcotest.(check bool) "resume counter bounded by snapshot" true
        (resumes <= snap "fastpath_prefix_resume");
      Alcotest.(check bool) "negfail counter bounded by snapshot" true
        (negfails <= snap "fastpath_prefix_negfail");
      (* Every resumed fallback ran exactly one resumed walk. *)
      Alcotest.(check int) "walk_resumed agrees with the resume counter"
        (snap "fastpath_prefix_resume") (snap "walk_resumed");

      (* Resume-depth histogram: populated, bounded by the chain depth, and
         never more samples than resumes.  The /proc reads themselves keep
         resuming (their dentries go cold too), so figures read later may
         only have grown — compare against fresh kernel-side state. *)
      let hist = read p "/proc/dcache/histograms" in
      let line = hist_line hist "resume_depth" in
      let n = hist_field line "n" in
      Alcotest.(check bool) "resume depths recorded" true (n > 0);
      let resumes_now =
        match List.assoc_opt "fastpath_prefix_resume" (Kernel.stats_snapshot kernel) with
        | Some v -> v
        | None -> 0
      in
      Alcotest.(check bool) "one depth sample per resume" true (n <= resumes_now);
      Alcotest.(check bool) "depth bounded by the chain" true
        (hist_field line "max" <= 12);
      Alcotest.(check bool) "depth positive" true (hist_field line "min" >= 1);
      Alcotest.(check bool) "histogram bounded by Trace state" true
        (n <= Dcache_util.Stats.Lhist.count Trace.resume_depth);

      (* Summary gauges and the config line. *)
      let summary = kv_lines (read p "/proc/dcache/summary") in
      Alcotest.(check bool) "summary resume_depth_n gauge live" true
        (assoc_or_fail "summary" "resume_depth_n" summary >= n);
      Alcotest.(check bool) "summary resume_depth_max gauge" true
        (assoc_or_fail "summary" "resume_depth_max" summary <= 12);
      Alcotest.(check bool) "config reports prefix_resume" true
        (contains_substring (read p "/proc/dcache/config") "prefix_resume true");

      (* The Chrome dump stays valid JSON and carries the new kinds. *)
      let js = Trace.dump_chrome () in
      Alcotest.(check bool) "chrome dump valid with new events" true (json_valid js);
      Alcotest.(check bool) "dump names prefix_resume" true
        (contains_substring js "\"name\":\"prefix_resume\"");
      Alcotest.(check bool) "dump names prefix_negfail" true
        (contains_substring js "\"name\":\"prefix_negfail\""))

let test_chrome_dump_is_valid_json () =
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disarm ();
      Trace.reset ())
    (fun () ->
      Alcotest.(check bool) "empty ring dumps valid JSON" true
        (json_valid (Trace.dump_chrome ()));
      Trace.armed := true;
      let kernel, p = ram_kernel ~config:Config.optimized () in
      ignore kernel;
      get "tree" (S.mkdir_p p "/x/y");
      get "file" (S.write_file p "/x/y/f" "1");
      for _ = 1 to 5 do
        ignore (get "stat" (S.stat p "/x/y/f"))
      done;
      Trace.armed := false;
      let js = Trace.dump_chrome () in
      Alcotest.(check bool) "workload ring dumps valid JSON" true (json_valid js);
      Alcotest.(check bool) "has a traceEvents array" true
        (contains_substring js "\"traceEvents\":[");
      Alcotest.(check bool) "contains stamped events" true
        (contains_substring js "\"name\":\"fastpath_hit\""))

(* --- sharded mutation path observability (§3.6) ---

   Drive churn that stays on the sharded path (create over a cached
   negative, rename to a vacated name, unlink), then read the lock table
   back through /proc/dcache/stripes and cross-check it against the
   Locktab directly.  /proc reads never take stripes (lookups are
   lockless, populate runs write-locked), so the figures are exact. *)

let test_stripes_surface () =
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "mkdir /proc" (S.mkdir_p p "/proc");
  get "mount proc" (S.mount_fs p (Kernel_procfs.make kernel) "/proc");
  get "tree" (S.mkdir_p p "/sh");
  let f i = Printf.sprintf "/sh/f%d" i in
  let g i = Printf.sprintf "/sh/g%d" i in
  for i = 0 to 19 do
    get "seed" (S.write_file p (f i) "x")
  done;
  for i = 0 to 19 do
    get "vacate" (S.unlink p (f i))
  done;
  for i = 0 to 19 do
    get "sharded create" (S.write_file p (f i) "x")
  done;
  for i = 0 to 19 do
    get "sharded rename" (S.rename p (f i) (g i))
  done;
  for i = 0 to 19 do
    get "sharded unlink" (S.unlink p (g i))
  done;
  let body = read p "/proc/dcache/stripes" in
  let kv = kv_lines body in
  Alcotest.(check int) "stripe count matches config" 128
    (assoc_or_fail "stripes" "stripes" kv);
  let acquired = assoc_or_fail "stripes" "acquired" kv in
  let contended = assoc_or_fail "stripes" "contended" kv in
  Alcotest.(check bool) "the churn acquired stripes" true (acquired > 0);
  let per_stripe =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "stripe"; i; a; c ] ->
          Some (int_of_string i, int_of_string a, int_of_string c)
        | _ -> None)
      (lines body)
  in
  Alcotest.(check int) "one line per stripe" 128 (List.length per_stripe);
  let sum_a = List.fold_left (fun s (_, a, _) -> s + a) 0 per_stripe in
  let sum_c = List.fold_left (fun s (_, _, c) -> s + c) 0 per_stripe in
  Alcotest.(check int) "per-stripe acquisitions sum to the header" acquired sum_a;
  Alcotest.(check int) "per-stripe contentions sum to the header" contended sum_c;
  (* Residual global-write accounting rides the sharded report: the figure
     must parse and agree with the counter (a /proc read never takes the
     write lock, so it is exact at the moment of the read). *)
  let globals = assoc_or_fail "stripes" "global_write_acquired" kv in
  Alcotest.(check int) "global_write_acquired agrees with the counter"
    (Kit.counter kernel "global_write_acquired")
    globals;
  let migrations = assoc_or_fail "stripes" "dlht_stripe_migrations" kv in
  (match Dcache_core.Dlht.of_namespace_opt (Kernel.init_ns kernel) with
  | None -> Alcotest.fail "optimized config lost its DLHT"
  | Some t ->
    Alcotest.(check int) "dlht_stripe_migrations agrees with the table"
      (Dcache_core.Dlht.stripe_migrations t)
      migrations);
  (match Dcache_vfs.Dcache.stripes (Kernel.dcache kernel) with
  | None -> Alcotest.fail "sharded config lost its lock table"
  | Some tab ->
    let a_now, c_now = Dcache_util.Locktab.totals tab in
    Alcotest.(check int) "acquisitions agree with the table" a_now acquired;
    Alcotest.(check int) "contentions agree with the table" c_now contended);
  (* The sharded syscall counters surface in stats too. *)
  let stats = kv_lines (read p "/proc/dcache/stats") in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " surfaced") true (assoc_or_fail "stats" k stats > 0))
    [ "sharded_create"; "sharded_rename"; "sharded_unlink" ];
  Alcotest.(check bool) "config reports the stripe count" true
    (contains_substring (read p "/proc/dcache/config") "dcache_stripes 128");
  Alcotest.(check bool) "stripe contention trace event registered" true
    (List.mem "stripe_contended" (List.init Trace.n_events Trace.event_name));
  (* The unsharded fallback renders an honest placeholder. *)
  let _kernel0, p0 =
    ram_kernel ~config:{ Config.optimized with Config.dcache_stripes = 0 } ()
  in
  get "mkdir /proc" (S.mkdir_p p0 "/proc");
  (match Dcache_vfs.Dcache.stripes (Kernel.dcache _kernel0) with
  | None -> ()
  | Some _ -> Alcotest.fail "dcache_stripes=0 built a lock table");
  get "mount proc" (S.mount_fs p0 (Kernel_procfs.make _kernel0) "/proc");
  Alcotest.(check string) "stripes file says 0" "stripes 0\n"
    (read p0 "/proc/dcache/stripes");
  Alcotest.(check bool) "config reports stripes off" true
    (contains_substring (read p0 "/proc/dcache/config") "dcache_stripes 0")

(* --- per-stripe negative lists via /proc/dcache/neglists (§6.3) ---

   Drive a stat storm of absent names (filling the lists), a create over a
   cached negative (the shortcut) and a per-mount generation invalidation,
   then read the book back: the cap, the list count, internally consistent
   occupancy lines, and the eviction/invalidation/shortcut counters. *)

let test_neglists_surface () =
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "mkdir /proc" (S.mkdir_p p "/proc");
  get "mount proc" (S.mount_fs p (Kernel_procfs.make kernel) "/proc");
  get "dir" (S.mkdir_p p "/nl");
  for i = 0 to 29 do
    expect_err Errno.ENOENT "absent" (S.stat p (Printf.sprintf "/nl/ghost%d" i))
  done;
  get "create over a cached negative" (S.write_file p "/nl/ghost0" "x");
  get "invalidate" (S.invalidate_negatives p "/nl");
  let body = read p "/proc/dcache/neglists" in
  let kv = kv_lines body in
  Alcotest.(check int) "cap matches config"
    (Kernel.config kernel).Config.neg_list_cap
    (assoc_or_fail "neglists" "neg_list_cap" kv);
  let occ = Dcache_vfs.Dcache.neg_occupancy (Kernel.dcache kernel) in
  let nlists = assoc_or_fail "neglists" "neg_lists" kv in
  Alcotest.(check int) "list count" (Array.length occ) nlists;
  let per_list =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "neglist"; i; "occupancy"; n ] -> Some (int_of_string i, int_of_string n)
        | _ -> None)
      (lines body)
  in
  Alcotest.(check int) "one occupancy line per list" nlists (List.length per_list);
  let total = assoc_or_fail "neglists" "neg_cached" kv in
  Alcotest.(check int) "occupancy lines sum to the total" total
    (List.fold_left (fun s (_, n) -> s + n) 0 per_list);
  Alcotest.(check bool) "the storm left cached negatives" true (total > 0);
  List.iter
    (fun (_, n) ->
      Alcotest.(check bool) "every list within the cap" true
        (n <= (Kernel.config kernel).Config.neg_list_cap))
    per_list;
  Alcotest.(check bool) "generation invalidation surfaced" true
    (assoc_or_fail "neglists" "neg_gen_invalidations" kv >= 1);
  Alcotest.(check bool) "create shortcut surfaced" true
    (assoc_or_fail "neglists" "create_neg_shortcut" kv >= 1);
  Alcotest.(check int) "eviction figure agrees with the counter"
    (counter kernel "neg_evicted")
    (assoc_or_fail "neglists" "neg_evicted" kv);
  Alcotest.(check bool) "config reports the cap" true
    (contains_substring
       (read p "/proc/dcache/config")
       (Printf.sprintf "neg_list_cap %d" (Kernel.config kernel).Config.neg_list_cap));
  (* The unsharded fallback keeps one list (index 0) and still renders. *)
  let kernel0, p0 =
    ram_kernel ~config:{ Config.optimized with Config.dcache_stripes = 0 } ()
  in
  get "mkdir /proc" (S.mkdir_p p0 "/proc");
  get "mount proc" (S.mount_fs p0 (Kernel_procfs.make kernel0) "/proc");
  get "dir" (S.mkdir_p p0 "/nl");
  expect_err Errno.ENOENT "absent" (S.stat p0 "/nl/gone");
  let kv0 = kv_lines (read p0 "/proc/dcache/neglists") in
  Alcotest.(check int) "unsharded: one list" 1
    (assoc_or_fail "neglists" "neg_lists" kv0);
  Alcotest.(check bool) "unsharded: negative tracked" true
    (assoc_or_fail "neglists" "neg_cached" kv0 >= 1)

(* --- per-directory cache efficacy via /proc/dcache/hot (§3.8) ---

   Drive a directed, fully warmed workload with the profiler armed while
   the test brute-force counts every hit and negative hit per directory,
   then read the sketch back and require exact agreement.  Exactness is
   the §3.8 bound at work: far fewer than K distinct directories are
   touched, so no slot is ever evicted and every error bound is 0.  The
   procfs reads themselves record hits too — against /proc directories,
   whose labels are disjoint from the driven ones, so the assertion set
   is restricted to the labels the test drove. *)

let test_hot_surface () =
  let module Profiler = Dcache_util.Profiler in
  Trace.reset ();
  Profiler.reset ();
  Fun.protect
    ~finally:(fun () ->
      Profiler.disarm ();
      Profiler.reset ();
      Trace.reset ())
    (fun () ->
      let kernel, p = ram_kernel ~config:Config.optimized () in
      get "mkdir /proc" (S.mkdir_p p "/proc");
      get "mount proc" (S.mount_fs p (Kernel_procfs.make kernel) "/proc");
      let ndirs = 4 in
      let dir i = Printf.sprintf "/hotdir%d" i in
      let file i j = Printf.sprintf "/hotdir%d/f%d" i j in
      for i = 0 to ndirs - 1 do
        get "mkdir" (S.mkdir_p p (dir i));
        for j = 0 to 2 do
          get "seed" (S.write_file p (file i j) "x")
        done
      done;
      (* Warm everything — positives and one cached absence per directory —
         so the armed phase below is all warm verdicts, making the
         brute-force count exact by construction. *)
      for i = 0 to ndirs - 1 do
        for j = 0 to 2 do
          ignore (get "warm" (S.stat p (file i j)))
        done;
        expect_err Errno.ENOENT "warm negative" (S.stat p (dir i ^ "/missing"));
        expect_err Errno.ENOENT "warm negative" (S.stat p (dir i ^ "/missing"))
      done;
      Profiler.arm ();
      let expected_hit = Array.make ndirs 0 in
      let expected_neg = Array.make ndirs 0 in
      for i = 0 to ndirs - 1 do
        (* Skewed per-directory traffic so the sort order is nontrivial. *)
        for _ = 1 to 4 + (3 * i) do
          let j = i mod 3 in
          ignore (get "hit" (S.stat p (file i j)));
          expected_hit.(i) <- expected_hit.(i) + 1
        done;
        for _ = 1 to 2 + i do
          expect_err Errno.ENOENT "neg hit" (S.stat p (dir i ^ "/missing"));
          expected_neg.(i) <- expected_neg.(i) + 1
        done
      done;
      Profiler.disarm ();
      let body = read p "/proc/dcache/hot" in
      Alcotest.(check int) "no evictions: under K distinct directories" 0
        (assoc_or_fail "hot" "evictions" (kv_lines body));
      let slots =
        List.filter_map
          (fun line ->
            match String.split_on_char ' ' line with
            | "dir" :: _key :: label :: "total" :: t :: "err" :: e :: "hit" :: h
              :: "miss" :: m :: "neg" :: ng :: "retry" :: _ :: "lease" :: _
              :: "inval" :: iv :: [] ->
              Some
                ( label,
                  ( int_of_string t,
                    int_of_string e,
                    int_of_string h,
                    int_of_string m,
                    int_of_string ng,
                    int_of_string iv ) )
            | _ -> None)
          (lines body)
      in
      Alcotest.(check bool) "sketch rendered some slots" true (slots <> []);
      for i = 0 to ndirs - 1 do
        let label = Printf.sprintf "hotdir%d" i in
        match List.assoc_opt label slots with
        | None -> Alcotest.failf "driven directory %s missing from /dcache/hot" label
        | Some (total, err, hit, miss, neg, inval) ->
          Alcotest.(check int) (label ^ " exact: err 0") 0 err;
          Alcotest.(check int) (label ^ " hits") expected_hit.(i) hit;
          Alcotest.(check int) (label ^ " negative hits") expected_neg.(i) neg;
          Alcotest.(check int) (label ^ " no misses while warm") 0 miss;
          Alcotest.(check int) (label ^ " no invalidations") 0 inval;
          Alcotest.(check int)
            (label ^ " total = sum of metrics")
            (expected_hit.(i) + expected_neg.(i))
            total
      done;
      (* Descending order among the driven labels (strictly increasing
         traffic by construction). *)
      let driven =
        List.filter (fun (l, _) -> String.length l >= 6 && String.sub l 0 6 = "hotdir") slots
      in
      let totals = List.map (fun (_, (t, _, _, _, _, _)) -> t) driven in
      let rec descending = function
        | a :: (b :: _ as rest) -> a >= b && descending rest
        | _ -> true
      in
      Alcotest.(check bool) "slots sorted by total descending" true (descending totals))

let test_procfs_without_attachments () =
  (* The optional subsystems default off; the files still exist and say so
     (and old Kernel_procfs.make callers keep working). *)
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "mkdir /proc" (S.mkdir_p p "/proc");
  get "mount proc" (S.mount_fs p (Kernel_procfs.make kernel) "/proc");
  Alcotest.(check bool) "faults placeholder" true
    (contains_substring (read p "/proc/faults") "no injector attached");
  Alcotest.(check bool) "netfs placeholder" true
    (contains_substring (read p "/proc/netfs/rpc") "no netfs server attached");
  Alcotest.(check bool) "leases placeholder" true
    (contains_substring (read p "/proc/netfs/leases") "no netfs server attached");
  (* Disarmed tracing still renders a complete, parseable surface. *)
  let hist = read p "/proc/dcache/histograms" in
  Alcotest.(check bool) "histogram lines render disarmed" true
    (hist_line hist "slowpath" <> "");
  Alcotest.(check bool) "trace header renders disarmed" true
    (contains_substring (read p "/proc/dcache/trace") "armed false")

let test_procfs_zero_traffic_netfs () =
  (* A server that exists but has served nothing renders all-zero figures —
     the "no … attached" placeholder is reserved for a genuinely absent
     server, so monitoring can tell "idle" from "not wired up". *)
  let kernel, p = ram_kernel ~config:Config.optimized () in
  let vclock = Vclock.create () in
  let server = Netfs.server ~clock:vclock (Dcache_fs.Ramfs.create ()) in
  get "mkdir /proc" (S.mkdir_p p "/proc");
  get "mount proc" (S.mount_fs p (Kernel_procfs.make ~netfs:server kernel) "/proc");
  let body = read p "/proc/netfs/rpc" in
  Alcotest.(check bool) "no placeholder for an attached, idle server" false
    (contains_substring body "no netfs server attached");
  let rpc = kv_lines body in
  List.iter
    (fun k -> Alcotest.(check int) ("zero " ^ k) 0 (assoc_or_fail "rpc" k rpc))
    [
      "rpcs"; "drops"; "delays"; "retries"; "giveups"; "drc_hits"; "partitions";
      "crashes"; "fenced";
    ];
  (* No injector on the link: the site list renders empty, not omitted. *)
  Alcotest.(check int) "fault_sites 0" 0 (assoc_or_fail "rpc" "fault_sites" rpc);
  let leases = kv_lines (read p "/proc/netfs/leases") in
  Alcotest.(check int) "epoch 0" 0 (assoc_or_fail "leases" "epoch" leases);
  Alcotest.(check int) "no grants" 0 (assoc_or_fail "leases" "grants" leases);
  Alcotest.(check int) "no clients" 0 (assoc_or_fail "leases" "clients" leases)

let test_batch_surface () =
  (* /proc/dcache/batch renders the §3.9 amortization figures: submit and
     window totals from the profiler's always-on atomics plus the
     miss-deferral and sharded mkdir/rmdir counters.  Drive a known
     mixture and require exact agreement. *)
  let module Profiler = Dcache_util.Profiler in
  let module Batch = Dcache_syscalls.Batch in
  Profiler.reset ();
  Fun.protect ~finally:Profiler.reset (fun () ->
      let kernel, p = ram_kernel ~config:Config.optimized () in
      get "mkdir /proc" (S.mkdir_p p "/proc");
      get "mount proc" (S.mount_fs p (Kernel_procfs.make kernel) "/proc");
      (* A cached negative for the name keeps mkdir on the sharded path
         (the stripe promotes it in place; a cold name falls back to the
         legacy global-lock path). *)
      expect_err Errno.ENOENT "seed negative" (S.stat p "/bdir");
      get "mkdir" (S.mkdir p "/bdir");
      expect_err Errno.ENOENT "seed negative" (S.stat p "/bgone");
      get "rmdir victim" (S.mkdir p "/bgone");
      get "rmdir" (S.rmdir p "/bgone");
      for i = 0 to 7 do
        get "seed" (S.write_file p (Printf.sprintf "/bdir/f%d" i) "x")
      done;
      let ring = Batch.create ~cap:8 p in
      for i = 0 to 7 do
        ignore (Batch.push_stat ring (Printf.sprintf "/bdir/f%d" i))
      done;
      (* First submit: all 8 probes miss the DLHT and are deferred to the
         grouped slowpath; the next two run warm under one window each. *)
      Batch.submit ring;
      Batch.submit ring;
      Batch.submit ring;
      let body = kv_lines (read p "/proc/dcache/batch") in
      let field = assoc_or_fail "batch" in
      Alcotest.(check int) "submits" 3 (field "batch_submits" body);
      Alcotest.(check int) "ops" 24 (field "batch_ops" body);
      Alcotest.(check int) "deferred: the cold submit's 8 misses" 8
        (field "batch_deferred" body);
      Alcotest.(check bool) "windows cover at least one per submit" true
        (field "batch_windows" body >= 3);
      Alcotest.(check int) "sharded mkdir count" 2 (field "sharded_mkdir" body);
      Alcotest.(check int) "sharded rmdir count" 1 (field "sharded_rmdir" body))

let suite =
  [
    Alcotest.test_case "scripted workload: full /proc surface read-back" `Quick
      test_proc_observability_surface;
    Alcotest.test_case "prefix-resume counters and histogram via /proc" `Quick
      test_prefix_resume_surface;
    Alcotest.test_case "Trace.dump_chrome emits valid JSON" `Quick
      test_chrome_dump_is_valid_json;
    Alcotest.test_case "procfs without faults/netfs attachments" `Quick
      test_procfs_without_attachments;
    Alcotest.test_case "attached idle netfs renders zero figures" `Quick
      test_procfs_zero_traffic_netfs;
    Alcotest.test_case "stripe lock table via /proc" `Quick test_stripes_surface;
    Alcotest.test_case "per-stripe negative lists via /proc/dcache/neglists" `Quick
      test_neglists_surface;
    Alcotest.test_case "per-directory sketch via /proc/dcache/hot is exact" `Quick
      test_hot_surface;
    Alcotest.test_case "vectored-submission figures via /proc/dcache/batch" `Quick
      test_batch_surface;
  ]
