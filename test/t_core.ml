(* Tests specific to the optimized directory cache: the DLHT/PCC fastpath,
   prefix-check memoization, directory completeness, aggressive/deep
   negative dentries, symlink aliases, signatures and collisions. *)

open Dcache_types
open Kit
module Lsm = Dcache_cred.Lsm
module Fastpath = Dcache_core.Fastpath
module Pcc = Dcache_core.Pcc
module Dlht = Dcache_core.Dlht

let opt_kernel ?(config = Config.optimized) ?lsms () = ram_kernel ~config ?lsms ()

let setup ?(config = Config.optimized) ?lsms () =
  let kernel, p = opt_kernel ~config ?lsms () in
  get "tree" (S.mkdir_p p "/a/b/c");
  get "file" (S.write_file p "/a/b/c/target" "payload!");
  (kernel, p)

let test_fastpath_hits_after_warm () =
  let kernel, p = setup () in
  ignore (get "warm" (S.stat p "/a/b/c/target"));
  Kernel.reset_stats kernel;
  for _ = 1 to 10 do
    ignore (get "hot" (S.stat p "/a/b/c/target"))
  done;
  Alcotest.(check int) "all fastpath" 10 (counter kernel "fastpath_hit");
  Alcotest.(check int) "no fallback" 0 (counter kernel "fastpath_fallback");
  Alcotest.(check int) "no slowpath" 0 (counter kernel "walk_slowpath")

let test_baseline_never_uses_fastpath () =
  let kernel, p = ram_kernel ~config:Config.baseline () in
  get "f" (S.write_file p "/f" "x");
  ignore (get "stat" (S.stat p "/f"));
  ignore (get "stat" (S.stat p "/f"));
  Alcotest.(check int) "no fastpath" 0 (counter kernel "fastpath_hit")

let test_pcc_memoizes_lsm_checks () =
  (* After the first permission-checked walk, repeated lookups must not
     invoke the LSM at all (§3.1/§4.1). *)
  let hooks = { Lsm.name = "probe"; inode_permission = (fun _ _ _ -> true) } in
  let counted, calls = Lsm.counting hooks in
  let kernel, p = setup ~lsms:[ counted ] () in
  ignore (get "warm" (S.stat p "/a/b/c/target"));
  let after_warm = calls () in
  Alcotest.(check bool) "LSM consulted on walk" true (after_warm > 0);
  for _ = 1 to 20 do
    ignore (get "hot" (S.stat p "/a/b/c/target"))
  done;
  Alcotest.(check int) "memoized: zero further LSM calls" after_warm (calls ());
  ignore kernel

let test_baseline_reevaluates_lsm () =
  let hooks = { Lsm.name = "probe"; inode_permission = (fun _ _ _ -> true) } in
  let counted, calls = Lsm.counting hooks in
  let kernel, p = setup ~config:Config.baseline ~lsms:[ counted ] () in
  ignore (get "warm" (S.stat p "/a/b/c/target"));
  let after_warm = calls () in
  ignore (get "hot" (S.stat p "/a/b/c/target"));
  Alcotest.(check bool) "baseline keeps checking" true (calls () > after_warm);
  ignore kernel

let test_pcc_shared_across_forks () =
  let kernel, _p = setup () in
  let alice_p = Proc.spawn ~cred:(alice ()) kernel in
  ignore (get "warm alice" (S.stat alice_p "/a/b/c/target"));
  let child = Proc.fork alice_p in
  Kernel.reset_stats kernel;
  ignore (get "child hot" (S.stat child "/a/b/c/target"));
  Alcotest.(check int) "child rides parent's PCC" 1 (counter kernel "fastpath_hit")

let test_commit_creds_preserves_pcc () =
  let kernel, _p = setup () in
  let alice_p = Proc.spawn ~cred:(alice ()) kernel in
  ignore (get "warm" (S.stat alice_p "/a/b/c/target"));
  (* A no-op credential change must keep the same cred (and PCC). *)
  Proc.set_cred alice_p (fun b -> Dcache_cred.Cred.Builder.set_uid b 1000);
  Kernel.reset_stats kernel;
  ignore (get "hot" (S.stat alice_p "/a/b/c/target"));
  Alcotest.(check int) "still fastpath" 1 (counter kernel "fastpath_hit");
  (* A real change starts with an empty PCC: first lookup falls back. *)
  Proc.set_cred alice_p (fun b -> Dcache_cred.Cred.Builder.set_gid b 4242);
  Kernel.reset_stats kernel;
  ignore (get "new cred" (S.stat alice_p "/a/b/c/target"));
  Alcotest.(check int) "fallback once" 1 (counter kernel "fastpath_fallback")

let test_rename_shoots_down_fastpath () =
  let kernel, p = setup () in
  ignore (get "warm" (S.stat p "/a/b/c/target"));
  get "rename dir" (S.rename p "/a/b" "/a/moved");
  expect_err Errno.ENOENT "old path dead" (S.stat p "/a/b/c/target");
  Alcotest.(check string) "new path live" "payload!" (get "read" (S.read_file p "/a/moved/c/target"));
  ignore kernel

let test_unlink_leaves_negative_on_fastpath () =
  let kernel, p = setup () in
  ignore (get "warm" (S.stat p "/a/b/c/target"));
  get "unlink" (S.unlink p "/a/b/c/target");
  Kernel.reset_stats kernel;
  expect_err Errno.ENOENT "fast negative" (S.stat p "/a/b/c/target");
  Alcotest.(check int) "served by fastpath" 1 (counter kernel "fastpath_hit");
  Alcotest.(check int) "negative hit" 1 (counter kernel "fastpath_negative_hit")

let test_rename_leaves_negative_for_old_name () =
  let kernel, p = setup () in
  ignore (get "warm" (S.stat p "/a/b/c/target"));
  get "rename" (S.rename p "/a/b/c/target" "/a/b/c/renamed");
  Kernel.reset_stats kernel;
  expect_err Errno.ENOENT "old name" (S.stat p "/a/b/c/target");
  Alcotest.(check int) "no fs consult" 0 (counter kernel "dcache_miss");
  ignore kernel

let test_deep_negative_dentries () =
  let fs, fs_calls = counting_fs (Dcache_fs.Ramfs.create ()) in
  let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
  let p = Proc.spawn kernel in
  get "base" (S.mkdir_p p "/x");
  expect_err Errno.ENOENT "deep miss" (S.stat p "/x/missing/deep/path");
  let lookups = fs_calls "lookup" in
  (* Repeats of the full deep path must not consult the fs again. *)
  expect_err Errno.ENOENT "again" (S.stat p "/x/missing/deep/path");
  expect_err Errno.ENOENT "again2" (S.stat p "/x/missing/deep/path");
  Alcotest.(check int) "fs untouched" lookups (fs_calls "lookup");
  Alcotest.(check bool) "deep negatives created" true
    (counter kernel "deep_negative_created" >= 2)

let test_deep_enotdir_dentries () =
  let kernel, p = setup () in
  expect_err Errno.ENOTDIR "under file" (S.stat p "/a/b/c/target/not/here");
  Kernel.reset_stats kernel;
  expect_err Errno.ENOTDIR "cached" (S.stat p "/a/b/c/target/not/here");
  Alcotest.(check int) "fastpath ENOTDIR" 1 (counter kernel "fastpath_negative_hit")

let test_mkdir_over_deep_negative_keeps_children () =
  (* Creating a DIRECTORY over a negative dentry: the deep negative children
     are still valid (the new directory is empty) — §5.2. *)
  let fs, fs_calls = counting_fs (Dcache_fs.Ramfs.create ()) in
  let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
  let p = Proc.spawn kernel in
  get "base" (S.mkdir_p p "/x");
  expect_err Errno.ENOENT "deep miss" (S.stat p "/x/newdir/child");
  get "mkdir over negative" (S.mkdir p "/x/newdir");
  let lookups = fs_calls "lookup" in
  expect_err Errno.ENOENT "child still negative, no fs call" (S.stat p "/x/newdir/child");
  Alcotest.(check int) "no fs lookup" lookups (fs_calls "lookup");
  (* And creating the child invalidates correctly. *)
  get "create child" (S.write_file p "/x/newdir/child" "now");
  ignore (get "exists" (S.stat p "/x/newdir/child"));
  ignore kernel

let test_file_creation_over_negative_drops_children () =
  let kernel, p = opt_kernel () in
  get "base" (S.mkdir_p p "/x");
  expect_err Errno.ENOENT "deep" (S.stat p "/x/thing/below");
  (* Create a FILE where the negative dentry was: ENOTDIR must now win. *)
  get "create file" (S.write_file p "/x/thing" "flat");
  expect_err Errno.ENOTDIR "below a file now" (S.stat p "/x/thing/below");
  ignore kernel

let test_completeness_serves_readdir_from_cache () =
  let fs, fs_calls = counting_fs (Dcache_fs.Ramfs.create ()) in
  let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
  let p = Proc.spawn kernel in
  get "tree" (S.mkdir_p p "/dir");
  for i = 1 to 20 do
    get "f" (S.write_file p (Printf.sprintf "/dir/f%02d" i) "x")
  done;
  let l1 = get "readdir1" (S.readdir_path p "/dir") in
  let fs_readdirs = fs_calls "readdir" in
  let l2 = get "readdir2" (S.readdir_path p "/dir") in
  Alcotest.(check int) "fs readdir not repeated" fs_readdirs (fs_calls "readdir");
  let names l = List.map (fun e -> e.Dcache_fs.Fs_intf.name) l |> List.sort compare in
  Alcotest.(check (list string)) "same listing" (names l1) (names l2);
  Alcotest.(check bool) "served from cache" true (counter kernel "readdir_from_cache" > 0)

let test_completeness_coherent_with_mutations () =
  let kernel, p = opt_kernel () in
  get "dir" (S.mkdir_p p "/dir");
  for i = 1 to 5 do
    get "f" (S.write_file p (Printf.sprintf "/dir/f%d" i) "x")
  done;
  ignore (get "readdir" (S.readdir_path p "/dir"));
  (* Mutate through the VFS; cached listings must stay correct. *)
  get "unlink" (S.unlink p "/dir/f3");
  get "create" (S.write_file p "/dir/f9" "x");
  get "rename" (S.rename p "/dir/f1" "/dir/f1renamed");
  let names =
    get "readdir2" (S.readdir_path p "/dir")
    |> List.map (fun e -> e.Dcache_fs.Fs_intf.name)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "coherent listing"
    [ "f1renamed"; "f2"; "f4"; "f5"; "f9" ] names;
  ignore kernel

let test_completeness_miss_is_negative () =
  let fs, fs_calls = counting_fs (Dcache_fs.Ramfs.create ()) in
  let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
  let p = Proc.spawn kernel in
  get "dir" (S.mkdir_p p "/dir");
  get "f" (S.write_file p "/dir/exists" "x");
  ignore (get "read dir" (S.readdir_path p "/dir"));
  let lookups = fs_calls "lookup" in
  expect_err Errno.ENOENT "miss under complete dir" (S.stat p "/dir/absent");
  Alcotest.(check int) "no fs lookup (complete)" lookups (fs_calls "lookup");
  Alcotest.(check bool) "counter" true (counter kernel "complete_dir_negative" > 0)

let test_mkdir_marks_complete () =
  let fs, fs_calls = counting_fs (Dcache_fs.Ramfs.create ()) in
  let _kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
  let p = Proc.spawn _kernel in
  get "mkdir" (S.mkdir p "/fresh");
  let lookups = fs_calls "lookup" in
  expect_err Errno.ENOENT "fresh dir is complete" (S.stat p "/fresh/anything");
  Alcotest.(check int) "no compulsory miss" lookups (fs_calls "lookup")

let test_readdir_then_stat_promotes_partials () =
  (* After a readdir, stats of the children need only getattr, never a
     directory-scanning lookup (§5.1). *)
  let fs, fs_calls = counting_fs (Dcache_fs.Ramfs.create ()) in
  let _kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
  let p = Proc.spawn _kernel in
  get "dir" (S.mkdir_p p "/dir");
  for i = 1 to 10 do
    get "f" (S.write_file p (Printf.sprintf "/dir/g%d" i) "x")
  done;
  Kernel.drop_caches _kernel;
  ignore (get "list" (S.readdir_path p "/dir"));
  let lookups = fs_calls "lookup" in
  for i = 1 to 10 do
    ignore (get "stat" (S.stat p (Printf.sprintf "/dir/g%d" i)))
  done;
  Alcotest.(check int) "no per-name directory scans" lookups (fs_calls "lookup")

let test_lseek_disqualifies_completion () =
  let kernel, p = opt_kernel () in
  get "dir" (S.mkdir_p p "/dir");
  for i = 1 to 8 do
    get "f" (S.write_file p (Printf.sprintf "/dir/f%d" i) "x")
  done;
  Kernel.drop_caches kernel;
  let fd = get "open" (S.openf p "/dir" [ Proc.O_RDONLY; Proc.O_DIRECTORY ]) in
  ignore (get "chunk" (S.getdents p fd 2));
  ignore (get "seek" (S.lseek p fd 1));
  let rec drain () = if get "drain" (S.getdents p fd 4) <> [] then drain () in
  drain ();
  get "close" (S.close p fd);
  Kernel.reset_stats kernel;
  ignore (get "readdir" (S.readdir_path p "/dir"));
  Alcotest.(check int) "not served from cache" 0 (counter kernel "readdir_from_cache")

let test_symlink_alias_fastpath () =
  let kernel, p = setup () in
  get "ln" (S.symlink p ~target:"/a/b" "/shortcut");
  ignore (get "warm" (S.stat p "/shortcut/c/target"));
  Kernel.reset_stats kernel;
  ignore (get "hot" (S.stat p "/shortcut/c/target"));
  Alcotest.(check int) "alias fastpath hit" 1 (counter kernel "fastpath_hit");
  Alcotest.(check int) "no slowpath" 0 (counter kernel "walk_slowpath")

let test_symlink_replacement_retargets () =
  let kernel, p = setup () in
  get "other" (S.mkdir_p p "/other");
  get "otherfile" (S.write_file p "/other/target" "other payload");
  get "ln" (S.symlink p ~target:"/a/b/c" "/sw");
  Alcotest.(check string) "via link" "payload!" (get "read" (S.read_file p "/sw/target"));
  get "rm ln" (S.unlink p "/sw");
  get "ln2" (S.symlink p ~target:"/other" "/sw");
  Alcotest.(check string) "retargeted" "other payload" (get "read" (S.read_file p "/sw/target"));
  ignore kernel

let test_trailing_symlink_fastpath () =
  let kernel, p = setup () in
  get "ln" (S.symlink p ~target:"/a/b/c/target" "/direct");
  ignore (get "warm" (S.stat p "/direct"));
  Kernel.reset_stats kernel;
  let a = get "hot" (S.stat p "/direct") in
  Alcotest.(check int) "fastpath" 1 (counter kernel "fastpath_hit");
  Alcotest.(check int) "size" 8 a.Attr.size;
  (* lstat of the same path must still see the symlink itself. *)
  let l = get "lstat" (S.lstat p "/direct") in
  Alcotest.(check bool) "symlink kind" true (File_kind.equal l.Attr.kind File_kind.Symlink)

let test_namespace_private_dlht () =
  let kernel, p = setup () in
  ignore (get "warm" (S.stat p "/a/b/c/target"));
  let child = Proc.fork p in
  get "unshare" (S.unshare_mount_ns child);
  Kernel.reset_stats kernel;
  (* First lookup in the fresh namespace cannot hit its (empty) DLHT. *)
  ignore (get "child stat" (S.stat child "/a/b/c/target"));
  Alcotest.(check int) "fallback in new ns" 1 (counter kernel "fastpath_fallback");
  Kernel.reset_stats kernel;
  ignore (get "child stat2" (S.stat child "/a/b/c/target"));
  Alcotest.(check int) "then hits" 1 (counter kernel "fastpath_hit");
  (* The original namespace is unaffected... but the dentry moved to the
     child's DLHT (one DLHT per dentry): the parent falls back once. *)
  ignore (get "parent stat" (S.stat p "/a/b/c/target"));
  ignore kernel

let test_mount_alias_resignature () =
  let kernel, p = setup () in
  get "bp1" (S.mkdir_p p "/alias1");
  get "bp2" (S.mkdir_p p "/alias2");
  get "bind1" (S.bind_mount p ~src:"/a/b" ~dst:"/alias1");
  get "bind2" (S.bind_mount p ~src:"/a/b" ~dst:"/alias2");
  (* Both aliases resolve correctly no matter the caching order. *)
  for _ = 1 to 3 do
    Alcotest.(check string) "via alias1" "payload!" (get "r1" (S.read_file p "/alias1/c/target"));
    Alcotest.(check string) "via alias2" "payload!" (get "r2" (S.read_file p "/alias2/c/target"))
  done;
  Alcotest.(check bool) "resignature happened" true
    (counter kernel "mount_alias_resignature" > 0)

let test_forced_collision_cross_cred_safety () =
  (* With a tiny signature, DLHT collisions are common.  A credential that
     never passed a prefix check for the colliding path must still get the
     correct file via the slowpath (paper §3.3: Bob cannot be fooled by
     Alice's cache state). *)
  let config = { Config.optimized with Config.sig_bits = 1 } in
  let kernel, root_p = ram_kernel ~config () in
  get "pub" (S.mkdir_p root_p "/pub");
  for i = 0 to 63 do
    get "f" (S.write_file root_p (Printf.sprintf "/pub/file%d" i) (string_of_int i))
  done;
  let alice_p = Proc.spawn ~cred:(alice ()) kernel in
  (* Alice warms every path; the 1-bit signatures guarantee collisions in
     the DLHT chains. *)
  for i = 0 to 63 do
    ignore (get "warm" (S.stat alice_p (Printf.sprintf "/pub/file%d" i)))
  done;
  let bob_p = Proc.spawn ~cred:(bob ()) kernel in
  for i = 0 to 63 do
    let content = get "bob reads" (S.read_file bob_p (Printf.sprintf "/pub/file%d" i)) in
    Alcotest.(check string) "correct file" (string_of_int i) content
  done

let test_eviction_coherence () =
  (* A tiny dcache: constant eviction must never produce wrong results. *)
  let config = { Config.optimized with Config.max_dentries = 24 } in
  let kernel, p = ram_kernel ~config () in
  get "mk" (S.mkdir_p p "/d");
  for i = 0 to 99 do
    get "f" (S.write_file p (Printf.sprintf "/d/f%d" i) (string_of_int i))
  done;
  for round = 1 to 3 do
    ignore round;
    for i = 0 to 99 do
      let c = get "read" (S.read_file p (Printf.sprintf "/d/f%d" i)) in
      Alcotest.(check string) "right content" (string_of_int i) c
    done
  done;
  Alcotest.(check bool) "evictions occurred" true (counter kernel "dcache_evicted" > 0);
  Alcotest.(check bool) "cache stayed bounded" true
    (Dcache_vfs.Dcache.dentry_count (Kernel.dcache kernel) <= 24 * 2)

let test_simulate_pcc_miss_mode () =
  let kernel, p = setup () in
  Fastpath.set_simulate_pcc_miss (Kernel.fastpath kernel) true;
  ignore (get "warm" (S.stat p "/a/b/c/target"));
  Kernel.reset_stats kernel;
  ignore (get "still correct" (S.stat p "/a/b/c/target"));
  Alcotest.(check int) "forced fallback" 1 (counter kernel "fastpath_fallback");
  Fastpath.set_simulate_pcc_miss (Kernel.fastpath kernel) false;
  ignore (get "warm2" (S.stat p "/a/b/c/target"));
  Kernel.reset_stats kernel;
  ignore (get "fast again" (S.stat p "/a/b/c/target"));
  Alcotest.(check int) "hit" 1 (counter kernel "fastpath_hit")

let test_dotdot_linux_vs_lexical () =
  (* Both dot-dot semantics agree on well-formed trees... *)
  let check_config config =
    let _, p = ram_kernel ~config () in
    get "t" (S.mkdir_p p "/t/u");
    get "f" (S.write_file p "/t/file" "T");
    Alcotest.(check string) "dotdot path" "T" (get "read" (S.read_file p "/t/u/../file"))
  in
  check_config Config.optimized;
  check_config { Config.optimized with Config.dotdot = Config.Dotdot_lexical };
  (* ...but differ through symlinks: /t/link/.. is /t lexically, yet the
     link target's parent under Linux semantics. *)
  let run config =
    let _, p = ram_kernel ~config () in
    get "deep" (S.mkdir_p p "/t/deep");
    get "elsewhere" (S.mkdir_p p "/elsewhere/sub");
    get "marker" (S.write_file p "/t/who" "t-dir");
    get "marker2" (S.write_file p "/elsewhere/who" "elsewhere-dir");
    get "ln" (S.symlink p ~target:"/elsewhere/sub" "/t/link");
    get "read" (S.read_file p "/t/link/../who")
  in
  Alcotest.(check string) "linux semantics: target's parent" "elsewhere-dir"
    (run Config.optimized);
  Alcotest.(check string) "lexical semantics: literal parent" "t-dir"
    (run { Config.optimized with Config.dotdot = Config.Dotdot_lexical })

let test_pcc_unit () =
  let pcc = Pcc.create ~entries:64 () in
  Alcotest.(check int) "capacity rounded" 64 (Pcc.capacity pcc);
  Alcotest.(check int) "static: no growth" 0 (Pcc.grows pcc);
  let kernel, p = setup () in
  ignore (get "stat" (S.stat p "/a/b/c/target"));
  ignore (kernel, p)

let test_dynamic_pcc_grows () =
  (* A PCC far smaller than the working set must grow when allowed, and the
     grown cache keeps lookups on the fastpath. *)
  let config =
    { Config.optimized with Config.pcc_entries = 32; pcc_max_entries = 4096 }
  in
  let kernel, p = ram_kernel ~config () in
  get "dir" (S.mkdir_p p "/many");
  for i = 0 to 499 do
    get "f" (S.write_file p (Printf.sprintf "/many/f%03d" i) "x")
  done;
  (* Two passes over a 500-file working set against a 32-entry cache. *)
  for _ = 1 to 3 do
    for i = 0 to 499 do
      ignore (get "stat" (S.stat p (Printf.sprintf "/many/f%03d" i)))
    done
  done;
  let pcc =
    Dcache_core.Pcc.of_cred p.Proc.cred (Kernel.init_ns kernel)
      ~entries:config.Config.pcc_entries
  in
  Alcotest.(check bool) "grew" true (Dcache_core.Pcc.grows pcc > 0);
  Alcotest.(check bool) "capacity increased" true (Dcache_core.Pcc.capacity pcc > 32);
  (* With capacity for the working set, a full pass stays on the fastpath. *)
  for i = 0 to 499 do
    ignore (get "stat" (S.stat p (Printf.sprintf "/many/f%03d" i)))
  done;
  Kernel.reset_stats kernel;
  for i = 0 to 499 do
    ignore (get "stat" (S.stat p (Printf.sprintf "/many/f%03d" i)))
  done;
  (* Residual set-associativity conflicts are expected; the grown cache must
     still serve the overwhelming majority on the fastpath (a static
     32-entry cache would miss nearly everything). *)
  Alcotest.(check bool) "mostly fastpath" true (counter kernel "fastpath_fallback" < 100)

let suite =
  [
    Alcotest.test_case "fastpath hits after warm" `Quick test_fastpath_hits_after_warm;
    Alcotest.test_case "baseline never uses fastpath" `Quick test_baseline_never_uses_fastpath;
    Alcotest.test_case "PCC memoizes LSM checks" `Quick test_pcc_memoizes_lsm_checks;
    Alcotest.test_case "baseline reevaluates LSM" `Quick test_baseline_reevaluates_lsm;
    Alcotest.test_case "PCC shared across forks" `Quick test_pcc_shared_across_forks;
    Alcotest.test_case "commit_creds preserves PCC" `Quick test_commit_creds_preserves_pcc;
    Alcotest.test_case "rename shoots down fastpath" `Quick test_rename_shoots_down_fastpath;
    Alcotest.test_case "unlink leaves fast negative" `Quick test_unlink_leaves_negative_on_fastpath;
    Alcotest.test_case "rename leaves negative old name" `Quick test_rename_leaves_negative_for_old_name;
    Alcotest.test_case "deep negative dentries" `Quick test_deep_negative_dentries;
    Alcotest.test_case "deep ENOTDIR dentries" `Quick test_deep_enotdir_dentries;
    Alcotest.test_case "mkdir over negative keeps deep children" `Quick
      test_mkdir_over_deep_negative_keeps_children;
    Alcotest.test_case "file over negative drops children" `Quick
      test_file_creation_over_negative_drops_children;
    Alcotest.test_case "completeness serves readdir" `Quick
      test_completeness_serves_readdir_from_cache;
    Alcotest.test_case "completeness coherent with mutations" `Quick
      test_completeness_coherent_with_mutations;
    Alcotest.test_case "complete-dir miss is negative" `Quick test_completeness_miss_is_negative;
    Alcotest.test_case "mkdir marks complete" `Quick test_mkdir_marks_complete;
    Alcotest.test_case "readdir then stat promotes partials" `Quick
      test_readdir_then_stat_promotes_partials;
    Alcotest.test_case "lseek disqualifies completion" `Quick test_lseek_disqualifies_completion;
    Alcotest.test_case "symlink alias fastpath" `Quick test_symlink_alias_fastpath;
    Alcotest.test_case "symlink replacement retargets" `Quick test_symlink_replacement_retargets;
    Alcotest.test_case "trailing symlink fastpath" `Quick test_trailing_symlink_fastpath;
    Alcotest.test_case "namespace-private DLHT" `Quick test_namespace_private_dlht;
    Alcotest.test_case "mount alias resignature" `Quick test_mount_alias_resignature;
    Alcotest.test_case "forced collisions: cross-cred safety" `Quick
      test_forced_collision_cross_cred_safety;
    Alcotest.test_case "eviction coherence" `Quick test_eviction_coherence;
    Alcotest.test_case "simulate PCC miss mode" `Quick test_simulate_pcc_miss_mode;
    Alcotest.test_case "dotdot: linux vs lexical" `Quick test_dotdot_linux_vs_lexical;
    Alcotest.test_case "pcc unit" `Quick test_pcc_unit;
    Alcotest.test_case "dynamic PCC grows" `Quick test_dynamic_pcc_grows;
  ]

let test_ro_rw_alias_flipflop () =
  (* The same subtree bind-mounted read-only and read-write: the per-dentry
     "one mount at a time" policy (§4.3) must never let the ro alias write
     or the rw alias fail, no matter the access order. *)
  let kernel, p = opt_kernel () in
  get "data" (S.mkdir_p p "/data");
  get "rw" (S.mkdir_p p "/rw");
  get "ro" (S.mkdir_p p "/ro");
  get "bind rw" (S.bind_mount p ~src:"/data" ~dst:"/rw");
  get "bind ro" (S.bind_mount ~readonly:true p ~src:"/data" ~dst:"/ro");
  for i = 1 to 10 do
    let name = Printf.sprintf "f%d" i in
    get "write via rw" (S.write_file p ("/rw/" ^ name) "v");
    ignore (get "read via ro" (S.read_file p ("/ro/" ^ name)));
    expect_err Errno.EROFS "ro write" (S.write_file p ("/ro/" ^ name) "nope");
    ignore (get "stat ro" (S.stat p ("/ro/" ^ name)));
    get "write again via rw" (S.write_file p ("/rw/" ^ name) "v2");
    Alcotest.(check string) "content" "v2" (get "read" (S.read_file p ("/rw/" ^ name)))
  done;
  ignore kernel

let test_single_bucket_primary_table () =
  (* A one-bucket primary hash table turns every lookup into a chain scan:
     pathological but must stay correct. *)
  let config = { Config.optimized with Config.dcache_buckets = 1 } in
  let _, p = ram_kernel ~config () in
  get "tree" (S.mkdir_p p "/a/b");
  for i = 0 to 49 do
    get "f" (S.write_file p (Printf.sprintf "/a/b/f%d" i) (string_of_int i))
  done;
  for i = 0 to 49 do
    Alcotest.(check string) "content" (string_of_int i)
      (get "read" (S.read_file p (Printf.sprintf "/a/b/f%d" i)))
  done

let test_symlink_chains () =
  let kernel, p = setup () in
  get "l1" (S.symlink p ~target:"/a/b/c/target" "/l1");
  get "l2" (S.symlink p ~target:"/l1" "/l2");
  get "l3" (S.symlink p ~target:"/l2" "/l3");
  Alcotest.(check string) "through 3 links" "payload!" (get "read" (S.read_file p "/l3"));
  Alcotest.(check string) "again (cached)" "payload!" (get "read" (S.read_file p "/l3"));
  let l = get "lstat" (S.lstat p "/l3") in
  Alcotest.(check bool) "lstat sees link" true
    (File_kind.equal l.Attr.kind File_kind.Symlink);
  (* Retarget the middle of the chain. *)
  get "other" (S.write_file p "/other_target" "other!");
  get "rm l2" (S.unlink p "/l2");
  get "l2'" (S.symlink p ~target:"/other_target" "/l2");
  Alcotest.(check string) "retargeted chain" "other!" (get "read" (S.read_file p "/l3"));
  ignore kernel

let test_pcc_capacity_eviction_correctness () =
  (* A tiny static PCC constantly evicts entries; lookups must stay correct
     and fall back rather than serve stale permissions. *)
  let config = { Config.optimized with Config.pcc_entries = 16; pcc_max_entries = 16 } in
  let kernel, root_p = ram_kernel ~config () in
  get "dir" (S.mkdir_p root_p "/pub");
  for i = 0 to 99 do
    get "f" (S.write_file root_p (Printf.sprintf "/pub/g%d" i) (string_of_int i))
  done;
  let alice_p = Proc.spawn ~cred:(alice ()) kernel in
  for round = 1 to 2 do
    ignore round;
    for i = 0 to 99 do
      Alcotest.(check string) "right file" (string_of_int i)
        (get "read" (S.read_file alice_p (Printf.sprintf "/pub/g%d" i)))
    done
  done;
  (* Revoke and verify no stale PCC entry survives the churn. *)
  get "revoke" (S.chmod root_p "/pub" 0o700);
  for i = 0 to 99 do
    expect_err Errno.EACCES "revoked" (S.stat alice_p (Printf.sprintf "/pub/g%d" i))
  done

let extra_suite =
  [
    Alcotest.test_case "ro/rw bind alias flip-flop" `Quick test_ro_rw_alias_flipflop;
    Alcotest.test_case "single-bucket primary table" `Quick test_single_bucket_primary_table;
    Alcotest.test_case "symlink chains" `Quick test_symlink_chains;
    Alcotest.test_case "tiny PCC eviction correctness" `Quick
      test_pcc_capacity_eviction_correctness;
  ]

let test_chroot_symlink_resolution () =
  (* An absolute symlink resolves against the process root: a chrooted
     process must get the jail's file, warm or cold — the fastpath's cached
     target signature is computed against the namespace root and must not
     leak into the jail. *)
  let kernel, p = opt_kernel () in
  get "host target" (S.mkdir_p p "/etc");
  get "host file" (S.write_file p "/etc/conf" "HOST");
  get "jail" (S.mkdir_p p "/jail/etc");
  get "jail file" (S.write_file p "/jail/etc/conf" "JAIL");
  get "link" (S.symlink p ~target:"/etc/conf" "/jail/ln");
  (* Warm the link from the host's perspective: /jail/ln -> /etc/conf. *)
  Alcotest.(check string) "host follows to host file" "HOST"
    (get "host read" (S.read_file p "/jail/ln"));
  Alcotest.(check string) "host follows again (fastpath)" "HOST"
    (get "host read2" (S.read_file p "/jail/ln"));
  let jailed = Proc.fork p in
  get "chroot" (S.chroot jailed "/jail");
  Alcotest.(check string) "jailed follows to jail file" "JAIL"
    (get "jail read" (S.read_file jailed "/ln"));
  Alcotest.(check string) "jailed follows again" "JAIL"
    (get "jail read2" (S.read_file jailed "/ln"));
  (* And the host still gets its own. *)
  Alcotest.(check string) "host unchanged" "HOST" (get "host read3" (S.read_file p "/jail/ln"));
  ignore kernel

let chroot_suite =
  [ Alcotest.test_case "chroot-safe symlink fastpath" `Quick test_chroot_symlink_resolution ]

let test_dnlc_style_comparison () =
  (* The Solaris-comparison mode: a separate listing cache serves repeated
     readdirs but feeds nothing back into the dcache — stat-after-readdir
     still pays per-name directory scans (§2.3/§5.1). *)
  let fs, fs_calls = counting_fs (Dcache_fs.Ramfs.create ()) in
  let config =
    { Config.optimized with Config.dir_completeness = false; dnlc_style_completeness = true }
  in
  let kernel = Kernel.create ~config ~root_fs:fs () in
  let p = Proc.spawn kernel in
  get "dir" (S.mkdir_p p "/dir");
  for i = 1 to 12 do
    get "f" (S.write_file p (Printf.sprintf "/dir/e%d" i) "x")
  done;
  Kernel.drop_caches kernel;
  ignore (get "readdir1" (S.readdir_path p "/dir"));
  let fs_readdirs = fs_calls "readdir" in
  ignore (get "readdir2" (S.readdir_path p "/dir"));
  Alcotest.(check int) "repeat served from the side cache" fs_readdirs (fs_calls "readdir");
  Alcotest.(check bool) "dnlc counter" true (counter kernel "readdir_from_dnlc" > 0);
  (* ...but lookups get no benefit: stats of listed names still scan. *)
  let lookups_before = fs_calls "lookup" in
  for i = 1 to 12 do
    ignore (get "stat" (S.stat p (Printf.sprintf "/dir/e%d" i)))
  done;
  Alcotest.(check bool) "stat-after-readdir still scans the directory" true
    (fs_calls "lookup" > lookups_before);
  (* ...and misses still consult the fs (no negative elision). *)
  let lookups_mid = fs_calls "lookup" in
  expect_err Errno.ENOENT "miss" (S.stat p "/dir/absent0");
  Alcotest.(check bool) "miss consults the fs" true (fs_calls "lookup" > lookups_mid);
  (* a mutation invalidates the side listing *)
  get "new entry" (S.write_file p "/dir/e99" "x");
  let names = get "readdir3" (S.readdir_path p "/dir") in
  Alcotest.(check int) "fresh listing after mutation" 13 (List.length names)

let dnlc_suite =
  [ Alcotest.test_case "Solaris DNLC-style comparison mode" `Quick test_dnlc_style_comparison ]

let test_dlht_membership_unit () =
  (* Module-level check of the one-DLHT-at-a-time policy (§4.3). *)
  let kernel, p = setup () in
  ignore (get "warm" (S.stat p "/a/b/c/target"));
  let child = Proc.fork p in
  get "unshare" (S.unshare_mount_ns child);
  ignore (get "warm in ns2" (S.stat child "/a/b/c/target"));
  (* The dentry moved to the child namespace's DLHT: the parent namespace's
     table no longer holds it. *)
  let find_in ns =
    let dlht =
      Dcache_core.Dlht.of_namespace
        ~buckets:(Kernel.config kernel).Config.dlht_buckets
        ~grow_load:(Kernel.config kernel).Config.dlht_grow_load ns
    in
    let key = Dcache_core.Fastpath.key (Kernel.fastpath kernel) in
    (* recover the signature by re-resolving through the child; simpler:
       population count *)
    ignore key;
    Dcache_core.Dlht.population dlht
  in
  Alcotest.(check bool) "child table populated" true (find_in child.Proc.ns > 0);
  ignore (get "parent re-warms" (S.stat p "/a/b/c/target"));
  Alcotest.(check bool) "tables stay disjoint per dentry" true
    (find_in p.Proc.ns > 0)

let dlht_suite =
  [ Alcotest.test_case "DLHT membership across namespaces" `Quick test_dlht_membership_unit ]

let test_mutation_between_chunks_blocks_completion () =
  (* A mutation between getdents chunks invalidates the snapshot: the
     directory must not be marked complete from stale data. *)
  let fs, fs_calls = counting_fs (Dcache_fs.Ramfs.create ()) in
  let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
  let p = Proc.spawn kernel in
  get "dir" (S.mkdir_p p "/d");
  for i = 1 to 8 do
    get "f" (S.write_file p (Printf.sprintf "/d/m%d" i) "x")
  done;
  Kernel.drop_caches kernel;
  let fd = get "open" (S.openf p "/d" [ Proc.O_RDONLY; Proc.O_DIRECTORY ]) in
  ignore (get "chunk" (S.getdents p fd 2));
  get "mutate mid-sequence" (S.unlink p "/d/m5");
  let rec drain () = if get "drain" (S.getdents p fd 4) <> [] then drain () in
  drain ();
  get "close" (S.close p fd);
  (* Not complete: a later miss must still consult the file system. *)
  let lookups = fs_calls "lookup" in
  expect_err Errno.ENOENT "fresh miss" (S.stat p "/d/neverexisted");
  Alcotest.(check bool) "fs consulted (directory not marked complete)" true
    (fs_calls "lookup" > lookups);
  (* And the unlinked name stays gone. *)
  expect_err Errno.ENOENT "unlinked" (S.stat p "/d/m5")

let chunked_mutation_suite =
  [ Alcotest.test_case "mutation between getdents chunks" `Quick
      test_mutation_between_chunks_blocks_completion ]
