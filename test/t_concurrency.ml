(* Multicore behaviour: parallel lookups racing cache-mutating operations
   must never crash or return results inconsistent with the final state. *)

open Kit
module Dcache = Dcache_vfs.Dcache
module Dlht = Dcache_core.Dlht
module Fastpath = Dcache_core.Fastpath
module Prng = Dcache_util.Prng
module Rwlock = Dcache_util.Rwlock

let test_parallel_stats_consistent config () =
  let _kernel, p = ram_kernel ~config () in
  get "tree" (S.mkdir_p p "/par/deep/dir");
  for i = 0 to 19 do
    get "f" (S.write_file p (Printf.sprintf "/par/deep/dir/f%d" i) (string_of_int i))
  done;
  let errors = Atomic.make 0 in
  let workers =
    List.init 6 (fun w ->
        Domain.spawn (fun () ->
            let wp = Proc.fork p in
            for round = 0 to 300 do
              let i = (round + w) mod 20 in
              match S.stat wp (Printf.sprintf "/par/deep/dir/f%d" i) with
              | Ok attr ->
                if attr.Dcache_types.Attr.size <> String.length (string_of_int i) then
                  Atomic.incr errors
              | Error _ -> Atomic.incr errors
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no wrong results" 0 (Atomic.get errors)

let test_readers_race_renames config () =
  let kernel, p = ram_kernel ~config () in
  get "tree" (S.mkdir_p p "/race/dir");
  get "f" (S.write_file p "/race/dir/stable" "S");
  get "g" (S.write_file p "/race/one" "1");
  let stop = Atomic.make false in
  let errors = Atomic.make 0 in
  let readers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let rp = Proc.fork p in
            while not (Atomic.get stop) do
              (* [stable] never moves: it must always resolve correctly. *)
              (match S.read_file rp "/race/dir/stable" with
              | Ok "S" -> ()
              | Ok _ -> Atomic.incr errors
              | Error _ -> Atomic.incr errors);
              (* [one]/[two] flip concurrently: either result is fine, a
                 crash or wrong content is not. *)
              (match S.read_file rp "/race/one" with
              | Ok "1" | Error Dcache_types.Errno.ENOENT -> ()
              | Ok _ -> Atomic.incr errors
              | Error _ -> Atomic.incr errors)
            done))
  in
  let mutator =
    Domain.spawn (fun () ->
        let mp = Proc.fork p in
        for i = 0 to 500 do
          let src, dst = if i mod 2 = 0 then ("/race/one", "/race/two") else ("/race/two", "/race/one") in
          (match S.rename mp src dst with Ok () | Error _ -> ());
          (match S.chmod mp "/race/dir" (if i mod 2 = 0 then 0o755 else 0o700) with
          | Ok () | Error _ -> ())
        done)
  in
  Domain.join mutator;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Alcotest.(check int) "no inconsistent reads" 0 (Atomic.get errors);
  ignore kernel

let test_parallel_pcc_same_cred () =
  (* Many domains sharing one credential hammer the same PCC. *)
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/shared/d");
  get "f" (S.write_file p "/shared/d/f" "x");
  let cred = alice () in
  get "mode" (S.chmod p "/shared" 0o755);
  let errors = Atomic.make 0 in
  let workers =
    List.init 8 (fun _ ->
        Domain.spawn (fun () ->
            let wp = Proc.spawn ~cred kernel in
            for _ = 0 to 500 do
              match S.stat wp "/shared/d/f" with
              | Ok _ -> ()
              | Error _ -> Atomic.incr errors
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no spurious failures" 0 (Atomic.get errors)

(* --- sharded mutation path (§3.6) --- *)

let within_unit _mnt _dentry = Ok ()

(* Same calibration trick as t_alloc: two back-to-back [Gc.minor_words]
   readings cancel out the boxed-float cost of the reading itself. *)
let measure_minor_words iters f =
  f ();
  f ();
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  let self = b -. a in
  for _ = 1 to iters do
    f ()
  done;
  let c = Gc.minor_words () in
  c -. b -. self

(* N writer domains churn create/rename/unlink through two shared
   directories while reader domains prove their warm hits stay on the
   lockless tier: zero minor-heap words and zero rwlock acquisitions even
   with every writer mid-mutation.  Writers share both directories (so
   their stripes genuinely contend) but own disjoint name sets, and each
   name walks a create -> cross-directory rename -> unlink cycle whose
   every step stays sharded after the warm-up lap: create lands on the
   cached negative the previous unlink (aggressive_negative) left behind,
   so no step needs the global write lock — which is exactly what keeps
   the readers' 0-locks assertion honest. *)
let test_nwriter_churn ~writers seed () =
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/churn/d0");
  get "tree" (S.mkdir_p p "/churn/d1");
  get "tree" (S.mkdir_p p "/stable");
  let stable = Array.init 8 (fun i -> Printf.sprintf "/stable/f%d" i) in
  Array.iter (fun f -> get "stable" (S.write_file p f "S")) stable;
  Array.iter (fun f -> ignore (get "warm" (S.stat p f))) stable;
  let names_per_writer = 8 in
  let name w k phase =
    Printf.sprintf "/churn/d%d/w%dn%d" (if phase = 2 then 1 else 0) w k
  in
  (* Warm-up lap: one full cycle per name seeds cached negatives at both
     endpoints, so the concurrent laps below never fall back to legacy. *)
  for w = 0 to writers - 1 do
    for k = 0 to names_per_writer - 1 do
      get "warm create" (S.write_file p (name w k 0) "x");
      get "warm rename" (S.rename p (name w k 1) (name w k 2));
      get "warm unlink" (S.unlink p (name w k 2))
    done
  done;
  let stop = Atomic.make false in
  let writer_errors = Atomic.make 0 in
  let writer_ops = Atomic.make 0 in
  let writer_domains =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            let wp = Proc.fork p in
            let g = Prng.create (seed + (w * 7919)) in
            let phase = Array.make names_per_writer 0 in
            let ops = ref 0 in
            while not (Atomic.get stop) do
              let k = Prng.int g names_per_writer in
              let r =
                match phase.(k) with
                | 0 -> S.write_file wp (name w k 0) "x"
                | 1 -> S.rename wp (name w k 1) (name w k 2)
                | _ -> S.unlink wp (name w k 2)
              in
              (match r with Ok () -> () | Error _ -> Atomic.incr writer_errors);
              phase.(k) <- (phase.(k) + 1) mod 3;
              incr ops
            done;
            Atomic.fetch_and_add writer_ops !ops |> ignore;
            phase))
  in
  let fp = Kernel.fastpath kernel in
  let reader_words = Array.make 2 infinity in
  let reader_locks = Array.make 2 (1, 1) in
  let reader_errors = Atomic.make 0 in
  let readers =
    List.init 2 (fun r ->
        Domain.spawn (fun () ->
            let rp = Proc.fork p in
            let ctx = Proc.walk_ctx rp in
            let probe i =
              match
                Fastpath.lookup_into fp ctx stable.(i land 7) ~within:within_unit
              with
              | Ok () -> ()
              | Error _ -> Atomic.incr reader_errors
            in
            (* Warm this domain's PCC/scratch, then measure. *)
            for i = 0 to 63 do
              probe i
            done;
            Rwlock.reset_acquisition_counts ();
            let i = ref 0 in
            let words =
              measure_minor_words 10_000 (fun () ->
                  probe !i;
                  incr i)
            in
            reader_words.(r) <- words;
            reader_locks.(r) <- Rwlock.acquisition_counts ()))
  in
  List.iter Domain.join readers;
  Atomic.set stop true;
  let phases = List.map Domain.join writer_domains in
  Alcotest.(check int) "no reader errors" 0 (Atomic.get reader_errors);
  Alcotest.(check int) "no writer errors" 0 (Atomic.get writer_errors);
  Array.iteri
    (fun r words ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "reader %d: zero words over 10k warm hits mid-churn" r)
        0.0 words)
    reader_words;
  Array.iteri
    (fun r locks ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "reader %d: zero rwlock acquisitions mid-churn" r)
        (0, 0) locks)
    reader_locks;
  (* The churn really exercised the sharded path, concurrently. *)
  Alcotest.(check bool) "churn overlapped the measurement" true
    (Atomic.get writer_ops > writers * names_per_writer);
  Alcotest.(check bool) "sharded creates" true (counter kernel "sharded_create" > 0);
  Alcotest.(check bool) "sharded renames" true (counter kernel "sharded_rename" > 0);
  Alcotest.(check bool) "sharded unlinks" true (counter kernel "sharded_unlink" > 0);
  (* Quiesced: every name sits exactly where its phase says it stopped. *)
  List.iteri
    (fun w phase ->
      Array.iteri
        (fun k ph ->
          (* phase is the NEXT step, so 1 = just created (in d0),
             2 = just renamed (in d1), 0 = just unlinked (absent). *)
          let check where expected path =
            match (S.stat p path, expected) with
            | Ok _, true | Error Dcache_types.Errno.ENOENT, false -> ()
            | Ok _, false -> Alcotest.failf "w%d k%d %s: unexpectedly present" w k where
            | Error e, _ ->
              Alcotest.failf "w%d k%d %s: %s" w k where (Dcache_types.Errno.to_string e)
          in
          check "d0" (ph = 1) (name w k 1);
          check "d1" (ph = 2) (name w k 2))
        phase)
    phases

let test_cross_rename_no_deadlock () =
  (* Two writers rename between the same directory pair in opposite
     directions: naive acquire-src-then-dst stripe ordering deadlocks here
     almost immediately; [Locktab.lock2]'s index ordering must not.  The
     test passing at all (rather than hanging) is the assertion. *)
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/dx");
  get "tree" (S.mkdir_p p "/dy");
  get "a" (S.write_file p "/dx/a" "A");
  get "b" (S.write_file p "/dy/b" "B");
  (* One lap each direction seeds cached negatives at the targets so the
     concurrent laps run sharded (and thus actually take two stripes). *)
  get "warm" (S.rename p "/dx/a" "/dy/a");
  get "warm" (S.rename p "/dy/a" "/dx/a");
  get "warm" (S.rename p "/dy/b" "/dx/b");
  get "warm" (S.rename p "/dx/b" "/dy/b");
  let errors = Atomic.make 0 in
  let flip wp src dst =
    match S.rename wp src dst with Ok () -> () | Error _ -> Atomic.incr errors
  in
  let wa =
    Domain.spawn (fun () ->
        let wp = Proc.fork p in
        for _ = 1 to 500 do
          flip wp "/dx/a" "/dy/a";
          flip wp "/dy/a" "/dx/a"
        done)
  in
  let wb =
    Domain.spawn (fun () ->
        let wp = Proc.fork p in
        for _ = 1 to 500 do
          flip wp "/dy/b" "/dx/b";
          flip wp "/dx/b" "/dy/b"
        done)
  in
  Domain.join wa;
  Domain.join wb;
  Alcotest.(check int) "every rename succeeded" 0 (Atomic.get errors);
  Alcotest.(check bool) "the sharded rename path ran" true
    (counter kernel "sharded_rename" > 0);
  Alcotest.(check string) "a intact" "A" (get "a" (S.read_file p "/dx/a"));
  Alcotest.(check string) "b intact" "B" (get "b" (S.read_file p "/dy/b"))

let test_churn_across_resize seed () =
  (* Lockless readers race a seeded create/rename/unlink storm sized to push
     the DLHT through at least one doubling, so probes keep landing while
     buckets migrate between the tables.  Stable names must always resolve
     with the right content; churned names may come and go but must never
     crash or return wrong data; afterwards the table must be structurally
     exact. *)
  let config = { Config.optimized with Config.dlht_buckets = 64 } in
  let kernel, p = ram_kernel ~config () in
  get "tree" (S.mkdir_p p "/churn/dir");
  let stable = Array.init 32 (fun i -> Printf.sprintf "/churn/dir/stable%d" i) in
  Array.iter (fun f -> get "stable" (S.write_file p f "S")) stable;
  Array.iter (fun f -> ignore (get "warm" (S.stat p f))) stable;
  let stop = Atomic.make false in
  let stable_errors = Atomic.make 0 in
  let churn_errors = Atomic.make 0 in
  let readers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            let rp = Proc.fork p in
            let i = ref w in
            while not (Atomic.get stop) do
              (match S.read_file rp stable.(!i mod Array.length stable) with
              | Ok "S" -> ()
              | Ok _ | Error _ -> Atomic.incr stable_errors);
              (* Churned names race their own creation/removal: any errno is
                 acceptable, and [""] can be observed between a re-create's
                 truncate and write; other content is wrong. *)
              (match S.read_file rp (Printf.sprintf "/churn/dir/c%d" (!i mod 512)) with
              | Ok "x" | Ok "" | Error _ -> ()
              | Ok _ -> Atomic.incr churn_errors);
              incr i
            done))
  in
  let name n = Printf.sprintf "/churn/dir/c%d" n in
  (* Two writer domains churn the same 512 names concurrently: their ops
     conflict freely (any errno is fine), mixing sharded sections with
     legacy write-locked fallbacks while the DLHT doubles underneath. *)
  let writers =
    List.init 2 (fun w ->
        Domain.spawn (fun () ->
            let wp = Proc.fork p in
            let g = Prng.create (seed + (w * 104729)) in
            for _ = 1 to 1000 do
              match Prng.int g 4 with
              | 0 | 1 -> (
                match S.write_file wp (name (Prng.int g 512)) "x" with
                | Ok () | Error _ -> ())
              | 2 -> (
                match S.unlink wp (name (Prng.int g 512)) with Ok () | Error _ -> ())
              | _ -> (
                match S.rename wp (name (Prng.int g 512)) (name (Prng.int g 512)) with
                | Ok () | Error _ -> ())
            done))
  in
  List.iter Domain.join writers;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Alcotest.(check int) "stable names always consistent" 0 (Atomic.get stable_errors);
  Alcotest.(check int) "churned names never wrong" 0 (Atomic.get churn_errors);
  let dlht =
    match Dlht.of_namespace_opt p.Proc.ns with
    | Some t -> t
    | None -> Alcotest.fail "no DLHT attached"
  in
  Alcotest.(check bool) "the churn crossed a resize boundary" true (Dlht.resizes dlht > 0);
  Dcache.with_write (Kernel.dcache kernel) (fun () -> Dlht.settle dlht);
  Alcotest.(check (list string)) "table self-check clean" [] (Dlht.self_check dlht);
  let occ = Dlht.occupancy dlht in
  Alcotest.(check int) "occupancy agrees with population" (Dlht.population dlht)
    occ.Dlht.occ_entries;
  Alcotest.(check int) "migration fully drained" 0 occ.Dlht.occ_old_pending;
  Array.iter
    (fun f ->
      match S.read_file p f with
      | Ok "S" -> ()
      | Ok c -> Alcotest.failf "%s corrupted: %S" f c
      | Error e -> Alcotest.failf "%s lost: %s" f (Dcache_types.Errno.to_string e))
    stable

let suite =
  [
    Alcotest.test_case "parallel stats [baseline]" `Slow
      (test_parallel_stats_consistent Config.baseline);
    Alcotest.test_case "parallel stats [optimized]" `Slow
      (test_parallel_stats_consistent Config.optimized);
    Alcotest.test_case "readers race renames [baseline]" `Slow
      (test_readers_race_renames Config.baseline);
    Alcotest.test_case "readers race renames [optimized]" `Slow
      (test_readers_race_renames Config.optimized);
    Alcotest.test_case "parallel PCC same cred" `Slow test_parallel_pcc_same_cred;
    Alcotest.test_case "2-writer churn, lockless readers [seed 1]" `Slow
      (test_nwriter_churn ~writers:2 1);
    Alcotest.test_case "4-writer churn, lockless readers [seed 1337]" `Slow
      (test_nwriter_churn ~writers:4 1337);
    Alcotest.test_case "8-writer churn, lockless readers [seed 9001]" `Slow
      (test_nwriter_churn ~writers:8 9001);
    Alcotest.test_case "cross-rename lock ordering" `Slow test_cross_rename_no_deadlock;
    Alcotest.test_case "churn across resize [seed 1]" `Slow (test_churn_across_resize 1);
    Alcotest.test_case "churn across resize [seed 1337]" `Slow
      (test_churn_across_resize 1337);
    Alcotest.test_case "churn across resize [seed 9001]" `Slow
      (test_churn_across_resize 9001);
  ]
