(* Multicore behaviour: parallel lookups racing cache-mutating operations
   must never crash or return results inconsistent with the final state. *)

open Kit
module Dcache = Dcache_vfs.Dcache
module Dlht = Dcache_core.Dlht
module Prng = Dcache_util.Prng

let test_parallel_stats_consistent config () =
  let _kernel, p = ram_kernel ~config () in
  get "tree" (S.mkdir_p p "/par/deep/dir");
  for i = 0 to 19 do
    get "f" (S.write_file p (Printf.sprintf "/par/deep/dir/f%d" i) (string_of_int i))
  done;
  let errors = Atomic.make 0 in
  let workers =
    List.init 6 (fun w ->
        Domain.spawn (fun () ->
            let wp = Proc.fork p in
            for round = 0 to 300 do
              let i = (round + w) mod 20 in
              match S.stat wp (Printf.sprintf "/par/deep/dir/f%d" i) with
              | Ok attr ->
                if attr.Dcache_types.Attr.size <> String.length (string_of_int i) then
                  Atomic.incr errors
              | Error _ -> Atomic.incr errors
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no wrong results" 0 (Atomic.get errors)

let test_readers_race_renames config () =
  let kernel, p = ram_kernel ~config () in
  get "tree" (S.mkdir_p p "/race/dir");
  get "f" (S.write_file p "/race/dir/stable" "S");
  get "g" (S.write_file p "/race/one" "1");
  let stop = Atomic.make false in
  let errors = Atomic.make 0 in
  let readers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let rp = Proc.fork p in
            while not (Atomic.get stop) do
              (* [stable] never moves: it must always resolve correctly. *)
              (match S.read_file rp "/race/dir/stable" with
              | Ok "S" -> ()
              | Ok _ -> Atomic.incr errors
              | Error _ -> Atomic.incr errors);
              (* [one]/[two] flip concurrently: either result is fine, a
                 crash or wrong content is not. *)
              (match S.read_file rp "/race/one" with
              | Ok "1" | Error Dcache_types.Errno.ENOENT -> ()
              | Ok _ -> Atomic.incr errors
              | Error _ -> Atomic.incr errors)
            done))
  in
  let mutator =
    Domain.spawn (fun () ->
        let mp = Proc.fork p in
        for i = 0 to 500 do
          let src, dst = if i mod 2 = 0 then ("/race/one", "/race/two") else ("/race/two", "/race/one") in
          (match S.rename mp src dst with Ok () | Error _ -> ());
          (match S.chmod mp "/race/dir" (if i mod 2 = 0 then 0o755 else 0o700) with
          | Ok () | Error _ -> ())
        done)
  in
  Domain.join mutator;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Alcotest.(check int) "no inconsistent reads" 0 (Atomic.get errors);
  ignore kernel

let test_parallel_pcc_same_cred () =
  (* Many domains sharing one credential hammer the same PCC. *)
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/shared/d");
  get "f" (S.write_file p "/shared/d/f" "x");
  let cred = alice () in
  get "mode" (S.chmod p "/shared" 0o755);
  let errors = Atomic.make 0 in
  let workers =
    List.init 8 (fun _ ->
        Domain.spawn (fun () ->
            let wp = Proc.spawn ~cred kernel in
            for _ = 0 to 500 do
              match S.stat wp "/shared/d/f" with
              | Ok _ -> ()
              | Error _ -> Atomic.incr errors
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no spurious failures" 0 (Atomic.get errors)

let test_churn_across_resize seed () =
  (* Lockless readers race a seeded create/rename/unlink storm sized to push
     the DLHT through at least one doubling, so probes keep landing while
     buckets migrate between the tables.  Stable names must always resolve
     with the right content; churned names may come and go but must never
     crash or return wrong data; afterwards the table must be structurally
     exact. *)
  let config = { Config.optimized with Config.dlht_buckets = 64 } in
  let kernel, p = ram_kernel ~config () in
  get "tree" (S.mkdir_p p "/churn/dir");
  let stable = Array.init 32 (fun i -> Printf.sprintf "/churn/dir/stable%d" i) in
  Array.iter (fun f -> get "stable" (S.write_file p f "S")) stable;
  Array.iter (fun f -> ignore (get "warm" (S.stat p f))) stable;
  let stop = Atomic.make false in
  let stable_errors = Atomic.make 0 in
  let churn_errors = Atomic.make 0 in
  let readers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            let rp = Proc.fork p in
            let i = ref w in
            while not (Atomic.get stop) do
              (match S.read_file rp stable.(!i mod Array.length stable) with
              | Ok "S" -> ()
              | Ok _ | Error _ -> Atomic.incr stable_errors);
              (* Churned names race their own creation/removal: any errno is
                 acceptable, and [""] can be observed between a re-create's
                 truncate and write; other content is wrong. *)
              (match S.read_file rp (Printf.sprintf "/churn/dir/c%d" (!i mod 512)) with
              | Ok "x" | Ok "" | Error _ -> ()
              | Ok _ -> Atomic.incr churn_errors);
              incr i
            done))
  in
  let g = Prng.create seed in
  let name n = Printf.sprintf "/churn/dir/c%d" n in
  for _ = 1 to 2000 do
    match Prng.int g 4 with
    | 0 | 1 -> (
      match S.write_file p (name (Prng.int g 512)) "x" with Ok () | Error _ -> ())
    | 2 -> ( match S.unlink p (name (Prng.int g 512)) with Ok () | Error _ -> ())
    | _ -> (
      match S.rename p (name (Prng.int g 512)) (name (Prng.int g 512)) with
      | Ok () | Error _ -> ())
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Alcotest.(check int) "stable names always consistent" 0 (Atomic.get stable_errors);
  Alcotest.(check int) "churned names never wrong" 0 (Atomic.get churn_errors);
  let dlht =
    match Dlht.of_namespace_opt p.Proc.ns with
    | Some t -> t
    | None -> Alcotest.fail "no DLHT attached"
  in
  Alcotest.(check bool) "the churn crossed a resize boundary" true (Dlht.resizes dlht > 0);
  Dcache.with_write (Kernel.dcache kernel) (fun () -> Dlht.settle dlht);
  Alcotest.(check (list string)) "table self-check clean" [] (Dlht.self_check dlht);
  let occ = Dlht.occupancy dlht in
  Alcotest.(check int) "occupancy agrees with population" (Dlht.population dlht)
    occ.Dlht.occ_entries;
  Alcotest.(check int) "migration fully drained" 0 occ.Dlht.occ_old_pending;
  Array.iter
    (fun f ->
      match S.read_file p f with
      | Ok "S" -> ()
      | Ok c -> Alcotest.failf "%s corrupted: %S" f c
      | Error e -> Alcotest.failf "%s lost: %s" f (Dcache_types.Errno.to_string e))
    stable

let suite =
  [
    Alcotest.test_case "parallel stats [baseline]" `Slow
      (test_parallel_stats_consistent Config.baseline);
    Alcotest.test_case "parallel stats [optimized]" `Slow
      (test_parallel_stats_consistent Config.optimized);
    Alcotest.test_case "readers race renames [baseline]" `Slow
      (test_readers_race_renames Config.baseline);
    Alcotest.test_case "readers race renames [optimized]" `Slow
      (test_readers_race_renames Config.optimized);
    Alcotest.test_case "parallel PCC same cred" `Slow test_parallel_pcc_same_cred;
    Alcotest.test_case "churn across resize [seed 1]" `Slow (test_churn_across_resize 1);
    Alcotest.test_case "churn across resize [seed 1337]" `Slow
      (test_churn_across_resize 1337);
    Alcotest.test_case "churn across resize [seed 9001]" `Slow
      (test_churn_across_resize 9001);
  ]
