(* Network file system semantics (paper §4.3): stateless clients revalidate
   every cached component (nullifying direct lookup); stateful clients trust
   the cache and rely on callbacks. *)

open Dcache_types
open Kit
module Netfs = Dcache_fs.Netfs
module Vclock = Dcache_util.Vclock

let make ~protocol config =
  let clock = Vclock.create () in
  let backing = Dcache_fs.Ramfs.create () in
  let server = Netfs.server ~rpc_latency_ns:1000 ~clock backing in
  let kernel = Kernel.create ~config ~root_fs:(Netfs.client ~protocol server) () in
  (kernel, Proc.spawn kernel, server, backing, clock)

let populate p =
  get "tree" (S.mkdir_p p "/export/data");
  get "file" (S.write_file p "/export/data/file" "remote contents")

let test_basic_ops protocol config () =
  let _, p, server, _, _ = make ~protocol config in
  populate p;
  Alcotest.(check string) "read over the wire" "remote contents"
    (get "read" (S.read_file p "/export/data/file"));
  get "rename" (S.rename p "/export/data/file" "/export/data/moved");
  expect_err Errno.ENOENT "old gone" (S.stat p "/export/data/file");
  ignore (get "new" (S.stat p "/export/data/moved"));
  Alcotest.(check bool) "rpcs happened" true (Netfs.rpc_count server > 0)

let test_stateless_revalidates_every_hit () =
  let kernel, p, server, _, _ = make ~protocol:Netfs.Stateless Config.optimized in
  populate p;
  ignore (get "warm" (S.stat p "/export/data/file"));
  Netfs.reset_rpc_count server;
  Kernel.reset_stats kernel;
  for _ = 1 to 10 do
    ignore (get "hot" (S.stat p "/export/data/file"))
  done;
  (* Three cached components, each revalidated per lookup: >= 30 RPCs. *)
  Alcotest.(check bool) "per-component RPCs" true (Netfs.rpc_count server >= 30);
  (* And the fastpath never engages (§4.3). *)
  Alcotest.(check int) "no direct lookups" 0 (counter kernel "fastpath_hit")

let test_stateful_trusts_cache () =
  let kernel, p, server, _, _ = make ~protocol:Netfs.Stateful Config.optimized in
  populate p;
  ignore (get "warm" (S.stat p "/export/data/file"));
  Netfs.reset_rpc_count server;
  Kernel.reset_stats kernel;
  for _ = 1 to 10 do
    ignore (get "hot" (S.stat p "/export/data/file"))
  done;
  Alcotest.(check int) "zero RPCs when warm" 0 (Netfs.rpc_count server);
  Alcotest.(check int) "all on the fastpath" 10 (counter kernel "fastpath_hit")

let test_stateless_sees_external_changes () =
  let _, p, server, backing, _ = make ~protocol:Netfs.Stateless Config.baseline in
  populate p;
  Alcotest.(check string) "before" "remote contents"
    (get "read" (S.read_file p "/export/data/file"));
  (* Another client rewrites the file directly on the server. *)
  let attr = get "server lookup" (backing.Dcache_fs.Fs_intf.getattr 1) in
  ignore attr;
  let dir =
    get "lookup export" (backing.Dcache_fs.Fs_intf.lookup backing.Dcache_fs.Fs_intf.root_ino "export")
  in
  let data = get "lookup data" (backing.Dcache_fs.Fs_intf.lookup dir.Attr.ino "data") in
  get "server unlink" (backing.Dcache_fs.Fs_intf.unlink data.Attr.ino "file");
  ignore (get "server create"
      (backing.Dcache_fs.Fs_intf.create data.Attr.ino "file" File_kind.Regular 0o644 ~uid:0 ~gid:0));
  Netfs.bump_generation server data.Attr.ino;
  (* Revalidation notices the stale dentry and refetches. *)
  let fresh = get "after" (S.stat p "/export/data/file") in
  Alcotest.(check int) "sees the replacement (new size)" 0 fresh.Attr.size

let test_stateful_callback_invalidates () =
  let _, p, server, backing, _ = make ~protocol:Netfs.Stateful Config.optimized in
  populate p;
  ignore (get "warm" (S.stat p "/export/data/file"));
  (* Wire the callback channel to the kernel's invalidation.  A directory
     callback must drop the directory's cached subtree (including its
     completeness): its contents changed on the server. *)
  (Netfs.callbacks server).Netfs.on_break <-
    (fun _ino -> get "cb" (S.invalidate_path p "/export/data"));
  (* External replacement + callback. *)
  let dir =
    get "lookup export" (backing.Dcache_fs.Fs_intf.lookup backing.Dcache_fs.Fs_intf.root_ino "export")
  in
  let data = get "lookup data" (backing.Dcache_fs.Fs_intf.lookup dir.Attr.ino "data") in
  get "server unlink" (backing.Dcache_fs.Fs_intf.unlink data.Attr.ino "file");
  ignore (get "server create"
      (backing.Dcache_fs.Fs_intf.create data.Attr.ino "bigger" File_kind.Regular 0o644 ~uid:0 ~gid:0));
  Netfs.break_callback server data.Attr.ino;
  (* The stale path is gone; the new name is visible. *)
  expect_err Errno.ENOENT "old invalidated" (S.stat p "/export/data/file");
  ignore (get "new visible" (S.stat p "/export/data/bigger"))

(* --- leases (§3.7): expiry, breaks, crash fencing, partitions, staleness --- *)

module Fault = Dcache_util.Fault
module Dcache = Dcache_vfs.Dcache

(* Short lease figures so tests can age leases out with small clock
   charges: 2 ms ttl, 0.2 ms skew, grace = ttl + skew (the minimum the
   server accepts). *)
let lease_ttl = 2_000_000

let lease_skew = 200_000

let make_leased ?faults () =
  let clock = Vclock.create () in
  let backing = Dcache_fs.Ramfs.create () in
  let server =
    Netfs.server ~rpc_latency_ns:1000 ?faults ~lease_ttl_ns:lease_ttl
      ~grace_ns:(lease_ttl + lease_skew) ~skew_ns:lease_skew ~clock backing
  in
  let c, fs = Netfs.connect_fs ~protocol:Netfs.Stateful server in
  let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
  (kernel, Proc.spawn kernel, server, c, clock)

let test_lease_expiry_forces_revalidation () =
  let kernel, p, server, c, clock = make_leased () in
  populate p;
  ignore (get "warm" (S.stat p "/export/data/file"));
  Netfs.reset_rpc_count server;
  Kernel.reset_stats kernel;
  for _ = 1 to 10 do
    ignore (get "hot" (S.stat p "/export/data/file"))
  done;
  Alcotest.(check int) "live leases: zero RPCs" 0 (Netfs.rpc_count server);
  Alcotest.(check bool) "gate consults answered live" true
    ((Netfs.lease_stats server c).Netfs.ls_gate_live > 0);
  (* Age every lease out; the next hit must fall back and revalidate. *)
  Vclock.charge clock (Int64.of_int (lease_ttl + lease_skew + 1));
  ignore (get "revalidated" (S.stat p "/export/data/file"));
  Alcotest.(check bool) "revalidation RPCs" true (Netfs.rpc_count server > 0);
  Alcotest.(check bool) "fastpath refused the dead lease" true
    (counter kernel "fastpath_lease_fallback" > 0);
  Alcotest.(check bool) "gate saw the expiry" true
    ((Netfs.lease_stats server c).Netfs.ls_gate_expired > 0);
  (* Revalidation re-earned every component's lease: lockless again. *)
  Netfs.reset_rpc_count server;
  for _ = 1 to 5 do
    ignore (get "rewarmed" (S.stat p "/export/data/file"))
  done;
  Alcotest.(check int) "regrant restores zero-RPC hits" 0 (Netfs.rpc_count server)

let test_lease_break_reaches_other_client () =
  let clock = Vclock.create () in
  let backing = Dcache_fs.Ramfs.create () in
  let server = Netfs.server ~rpc_latency_ns:1000 ~clock backing in
  let cA, fsA = Netfs.connect_fs server in
  let kA = Kernel.create ~config:Config.optimized ~root_fs:fsA () in
  let pA = Proc.spawn kA in
  let _cB, fsB = Netfs.connect_fs server in
  let kB = Kernel.create ~config:Config.optimized ~root_fs:fsB () in
  let pB = Proc.spawn kB in
  populate pA;
  Alcotest.(check string) "A reads v0" "remote contents"
    (get "read A" (S.read_file pA "/export/data/file"));
  (* A's invalidation hook: drop the directory's cached subtree, the way
     kernel integrations wire the break delivery. *)
  Netfs.set_invalidate cA (fun _ino -> ignore (S.invalidate_path pA "/export/data"));
  (* B rewrites the file through its own mount; the server breaks A's
     lease before the mutation lands. *)
  get "B writes" (S.write_file pB "/export/data/file" "version two");
  Alcotest.(check bool) "A's lease was broken" true
    ((Netfs.lease_stats server cA).Netfs.ls_breaks > 0);
  Alcotest.(check bool) "eviction took the sharded path" true
    (counter kA "sharded_cb_invalidate" > 0);
  Alcotest.(check string) "A sees B's write" "version two"
    (get "read A again" (S.read_file pA "/export/data/file"))

let test_crash_epoch_fencing () =
  let inj = Fault.create ~seed:1 () in
  let _, p, server, c, clock = make_leased ~faults:inj () in
  populate p;
  ignore (get "warm" (S.stat p "/export/data/file"));
  (* Lose the first reply, then crash the server on the retransmission:
     the duplicate-reply-cache entry predates the new epoch, so it must be
     fenced and the mutation re-executed — after stalling out the grace
     period, by which time every lease the dead server forgot has
     expired. *)
  Fault.arm (Fault.site inj "netfs.drop") (Fault.Nth 1);
  Fault.arm (Fault.site inj "netfs.crash") (Fault.Nth 2);
  let v0 = Vclock.elapsed_ns clock in
  get "write survives the crash" (S.write_file p "/export/data/file" "post-crash contents");
  let st = Netfs.rpc_stats server in
  Alcotest.(check int) "one crash" 1 st.Netfs.rs_crashes;
  Alcotest.(check int) "stale DRC entry fenced" 1 st.Netfs.rs_fenced;
  Alcotest.(check int) "no duplicate-cache replay across epochs" 0 st.Netfs.rs_drc_hits;
  Alcotest.(check int) "epoch bumped" 1 (Netfs.epoch server);
  Alcotest.(check int) "client observed the new epoch" 1 (Netfs.client_epoch c);
  Alcotest.(check int) "client lease table flushed once" 1
    (Netfs.lease_stats server c).Netfs.ls_fences;
  Alcotest.(check bool) "mutation stalled past the grace period" true
    (Int64.sub (Vclock.elapsed_ns clock) v0 >= Int64.of_int (Netfs.grace_ns server));
  Alcotest.(check bool) "grace over once the mutation lands" true (not (Netfs.in_grace server));
  Alcotest.(check string) "exactly-once effect" "post-crash contents"
    (get "read back" (S.read_file p "/export/data/file"))

let test_partition_degradation_ladder () =
  let inj = Fault.create ~seed:1 () in
  let kernel, p, server, c, clock = make_leased ~faults:inj () in
  populate p;
  ignore (get "warm" (S.stat p "/export/data/file"));
  let partition = Fault.site inj "netfs.partition" in
  Fault.arm partition Fault.Always;
  (* Rung 1: live leases keep serving locklessly through the outage. *)
  Netfs.reset_rpc_count server;
  Kernel.reset_stats kernel;
  let gate0 = (Netfs.lease_stats server c).Netfs.ls_gate_live in
  for _ = 1 to 5 do
    ignore (get "served from live lease" (S.stat p "/export/data/file"))
  done;
  Alcotest.(check int) "no RPC while leases live" 0 (Netfs.rpc_count server);
  Alcotest.(check int) "all five on the fastpath" 5 (counter kernel "fastpath_hit");
  Alcotest.(check bool) "gate consulted" true
    ((Netfs.lease_stats server c).Netfs.ls_gate_live > gate0);
  (* Rung 2: leases age out; revalidation cannot reach the server, so the
     lookup surfaces EIO rather than a stale positive. *)
  Vclock.charge clock (Int64.of_int (lease_ttl + lease_skew + 1));
  expect_err Errno.EIO "degrades to EIO, never a stale hit" (S.stat p "/export/data/file");
  Alcotest.(check bool) "client gave up after retries" true
    ((Netfs.rpc_stats server).Netfs.rs_giveups > 0);
  Alcotest.(check bool) "partitioned exchanges counted" true
    ((Netfs.rpc_stats server).Netfs.rs_partitions > 0);
  (* Rung 3: EIO was never cached as absence — heal the link and the same
     path resolves positively again. *)
  Fault.disarm partition;
  ignore (get "heals" (S.stat p "/export/data/file"))

(* The acceptance property (§3.7): under any schedule of drops, partitions
   and crashes, no client observes a positive hit contradicting a
   server-side truth that changed more than [lease_ttl + skew] virtual ns
   earlier.  A reader kernel races a writer kernel through one faulty
   server; ground truth (present/ino/size per path) is probed directly on
   the backing store after every writer op, and every successful reader
   stat is audited against it.  EIO and ENOENT are not staleness events —
   the bound is about stale positives only. *)
let run_staleness_schedule seed =
  let module Prng = Dcache_util.Prng in
  let clock = Vclock.create () in
  let backing = Dcache_fs.Ramfs.create () in
  let inj = Fault.create ~seed () in
  let server =
    Netfs.server ~rpc_latency_ns:1000 ~faults:inj ~lease_ttl_ns:lease_ttl
      ~grace_ns:(lease_ttl + lease_skew) ~skew_ns:lease_skew ~clock backing
  in
  let cA, fsA = Netfs.connect_fs server in
  let kA = Kernel.create ~config:Config.optimized ~root_fs:fsA () in
  let pA = Proc.spawn kA in
  let _cB, fsB = Netfs.connect_fs server in
  let kB = Kernel.create ~config:Config.optimized ~root_fs:fsB () in
  let pB = Proc.spawn kB in
  ignore kB;
  get "tree" (S.mkdir_p pB "/export");
  let names = Array.init 6 (fun i -> Printf.sprintf "f%d" i) in
  let paths = Array.map (fun n -> "/export/" ^ n) names in
  let dir_ino =
    (get "export ino"
       (backing.Dcache_fs.Fs_intf.lookup backing.Dcache_fs.Fs_intf.root_ino "export"))
      .Attr.ino
  in
  (* Ground truth per path: (present, ino, size), stamped with the virtual
     time its value last changed.  Probing happens after each writer op,
     so a change is never stamped earlier than it really was — the audit
     only errs conservative. *)
  let truth = Array.map (fun _ -> (false, -1, -1)) paths in
  let t_change = Array.map (fun _ -> 0L) paths in
  let probe_truth () =
    Array.iteri
      (fun i name ->
        let now_state =
          match backing.Dcache_fs.Fs_intf.lookup dir_ino name with
          | Ok a -> (true, a.Attr.ino, a.Attr.size)
          | Error _ -> (false, -1, -1)
        in
        if now_state <> truth.(i) then begin
          truth.(i) <- now_state;
          t_change.(i) <- Vclock.elapsed_ns clock
        end)
      names
  in
  probe_truth ();
  (* The reader's break hook: evict whichever path currently maps to the
     broken file inode.  Deliveries crossing a partition are lost — the
     lease ttl, not the hook, carries the bound. *)
  Netfs.set_invalidate cA (fun ino ->
      Array.iteri
        (fun i path ->
          match truth.(i) with
          | true, tino, _ when tino = ino -> ignore (S.invalidate_path pA path)
          | _ -> ())
        paths);
  let prng = Prng.create ((seed * 2654435761) lxor 0xbeef) in
  Fault.arm (Fault.site inj "netfs.drop") (Fault.Probability 0.15);
  Fault.arm (Fault.site inj "netfs.partition") (Fault.Probability 0.1);
  let bound = Int64.of_int (lease_ttl + lease_skew) in
  for step = 1 to 400 do
    if step mod 50 = 0 then Fault.arm (Fault.site inj "netfs.crash") (Fault.Nth 1);
    let wi = Prng.int prng (Array.length paths) in
    (match Prng.int prng 4 with
    | 0 -> ignore (S.write_file pB paths.(wi) (String.make (1 + Prng.int prng 32) 'w'))
    | 1 -> ignore (S.unlink pB paths.(wi))
    | 2 -> ignore (S.write_file pB paths.(wi) "fresh")
    | _ -> ());
    probe_truth ();
    (* Let leases age a little each step, occasionally a lot. *)
    Vclock.charge clock (Int64.of_int (Prng.int prng 400_000));
    if Prng.int prng 20 = 0 then Vclock.charge clock (Int64.of_int (lease_ttl / 2));
    let ri = Prng.int prng (Array.length paths) in
    let t_before = Vclock.elapsed_ns clock in
    (match S.stat pA paths.(ri) with
    | Ok attr ->
      let present, tino, tsize = truth.(ri) in
      let age = Int64.sub t_before t_change.(ri) in
      let fresh_enough = Int64.compare age bound <= 0 in
      if (not present) && not fresh_enough then
        Alcotest.failf "seed %d step %d: positive hit for %s absent for %Ld ns (bound %Ld)"
          seed step paths.(ri) age bound;
      if present && (tino <> attr.Attr.ino || tsize <> attr.Attr.size) && not fresh_enough
      then
        Alcotest.failf
          "seed %d step %d: stale attrs for %s (ino %d size %d vs truth ino %d size %d) \
           after %Ld ns (bound %Ld)"
          seed step paths.(ri) attr.Attr.ino attr.Attr.size tino tsize age bound
    | Error _ -> (* absence or unknown: not a staleness event *) ())
  done;
  let st = Netfs.rpc_stats server in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: crashes exercised" seed)
    true (st.Netfs.rs_crashes >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: partitions exercised" seed)
    true (st.Netfs.rs_partitions >= 1);
  Alcotest.(check (list string))
    (Printf.sprintf "seed %d: reader dcache coherent" seed)
    []
    (Dcache.self_check (Kernel.dcache kA))

let test_lease_staleness_bound () = List.iter run_staleness_schedule [ 1; 1337; 9001 ]

let test_rpc_latency_charged () =
  let _, p, server, _, clock = make ~protocol:Netfs.Stateless Config.baseline in
  populate p;
  let v0 = Vclock.elapsed_ns clock in
  ignore (get "stat" (S.stat p "/export/data/file"));
  let delta = Int64.sub (Vclock.elapsed_ns clock) v0 in
  ignore server;
  Alcotest.(check bool) "virtual RPC time accrued" true (delta >= 1000L)

let suite =
  [
    Alcotest.test_case "stateless basic ops [baseline]" `Quick
      (test_basic_ops Netfs.Stateless Config.baseline);
    Alcotest.test_case "stateless basic ops [optimized]" `Quick
      (test_basic_ops Netfs.Stateless Config.optimized);
    Alcotest.test_case "stateful basic ops [optimized]" `Quick
      (test_basic_ops Netfs.Stateful Config.optimized);
    Alcotest.test_case "stateless revalidates every hit" `Quick
      test_stateless_revalidates_every_hit;
    Alcotest.test_case "stateful trusts the cache" `Quick test_stateful_trusts_cache;
    Alcotest.test_case "stateless sees external changes" `Quick
      test_stateless_sees_external_changes;
    Alcotest.test_case "stateful callback invalidates" `Quick
      test_stateful_callback_invalidates;
    Alcotest.test_case "rpc latency charged" `Quick test_rpc_latency_charged;
    Alcotest.test_case "lease expiry forces revalidation" `Quick
      test_lease_expiry_forces_revalidation;
    Alcotest.test_case "lease break reaches the other client" `Quick
      test_lease_break_reaches_other_client;
    Alcotest.test_case "crash recovery fences the old epoch" `Quick test_crash_epoch_fencing;
    Alcotest.test_case "partition degradation ladder" `Quick
      test_partition_degradation_ladder;
    Alcotest.test_case "staleness bounded by ttl + skew (seeds 1/1337/9001)" `Quick
      test_lease_staleness_bound;
  ]
