(* The §3.8 profiler: span-threaded trace ring, chrome dump flow linkage,
   the space-saving sketch's error bounds, and sliding-window rotation.

   Every test resets Trace and Profiler on the way out — both are global,
   and the suites share one binary. *)

open Kit
module Trace = Dcache_util.Trace
module Profiler = Dcache_util.Profiler
module Lhist = Dcache_util.Stats.Lhist
module Netfs = Dcache_fs.Netfs
module Vclock = Dcache_util.Vclock

(* --- tiny dump parsers (the dump is machine-made: exact substrings) --- *)

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec at i = if i + m > n then -1 else if String.sub s i m = sub then i else at (i + 1) in
  at from

(* First integer immediately following [key] at or after [from]. *)
let int_after s key from =
  match find_sub s key from with
  | -1 -> None
  | i ->
    let n = String.length s in
    let start = i + String.length key in
    let j = ref start in
    if !j < n && s.[!j] = '-' then incr j;
    while !j < n && (match s.[!j] with '0' .. '9' -> true | _ -> false) do
      incr j
    done;
    if !j = start then None else Some (int_of_string (String.sub s start (!j - start)))

(* --- ring wraparound stays coherent and the dump stays valid JSON --- *)

let test_ring_wraparound_chrome () =
  Trace.reset ();
  Profiler.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disarm ();
      Profiler.disarm ();
      Trace.configure ~capacity:8192;
      Trace.reset ();
      Profiler.reset ())
    (fun () ->
      Trace.configure ~capacity:16;
      Trace.armed := true;
      Profiler.arm ();
      (* Real workload traffic (not hand stamps): plenty of syscalls so the
         16-slot ring wraps several times over. *)
      let _kernel, p = ram_kernel ~config:Config.optimized () in
      get "tree" (S.mkdir_p p "/w");
      get "file" (S.write_file p "/w/f" "1");
      for _ = 1 to 50 do
        ignore (get "stat" (S.stat p "/w/f"))
      done;
      Trace.armed := false;
      Profiler.disarm ();
      let total = Trace.recorded () in
      Alcotest.(check bool) "ring overflowed" true (total > 16);
      Alcotest.(check int) "dropped = recorded - capacity" (total - 16) (Trace.dropped ());
      (* The retained window is exactly the newest [capacity] stamps, in
         sequence order with no holes — overwrite is coherent. *)
      let seqs = ref [] in
      Trace.iter_events (fun s _ts _ev _arg _span -> seqs := s :: !seqs);
      let seqs = List.rev !seqs in
      Alcotest.(check int) "capacity events retained" 16 (List.length seqs);
      List.iteri
        (fun k s -> Alcotest.(check int) "contiguous oldest-first" (total - 16 + k) s)
        seqs;
      (* Some retained stamps carry spans (the workload ran profiled). *)
      let spanned = ref 0 in
      Trace.iter_events (fun _ _ _ _ span -> if span <> 0 then incr spanned);
      Alcotest.(check bool) "span lane populated" true (!spanned > 0);
      let js = Trace.dump_chrome () in
      Alcotest.(check bool) "wrapped ring dumps valid JSON" true (json_valid js);
      Alcotest.(check bool) "dump carries span args" true
        (contains_substring js "\"span\":");
      Alcotest.(check bool) "render survives the wrap" true
        (contains_substring (Trace.ring_to_string ()) "dropped"))

(* --- the acceptance flow: A's mutation -> server break -> B's fallback
   renders as one connected flow in the chrome dump --- *)

let test_cross_client_flow () =
  Trace.reset ();
  Profiler.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disarm ();
      Profiler.disarm ();
      Trace.reset ();
      Profiler.reset ())
    (fun () ->
      let clock = Vclock.create () in
      let backing = Dcache_fs.Ramfs.create () in
      let server = Netfs.server ~rpc_latency_ns:1000 ~clock backing in
      let _cA, fsA = Netfs.connect_fs server in
      let kA = Kernel.create ~config:Config.optimized ~root_fs:fsA () in
      let pA = Proc.spawn kA in
      let cB, fsB = Netfs.connect_fs server in
      let kB = Kernel.create ~config:Config.optimized ~root_fs:fsB () in
      let pB = Proc.spawn kB in
      ignore kB;
      (* B warms the path and holds live leases on every component.  No
         invalidate hook on B: the lease gate alone must reject the stale
         verdict, which is exactly the link site. *)
      get "tree" (S.mkdir_p pA "/export/data");
      get "file" (S.write_file pA "/export/data/file" "v0");
      for _ = 1 to 3 do
        ignore (get "B warms" (S.stat pB "/export/data/file"))
      done;
      Trace.armed := true;
      Profiler.arm ();
      (* Client A rewrites the file: A's request span rides the RPC; the
         server-side mutation breaks B's lease under that span and records
         it in B's break table. *)
      get "A writes" (S.write_file pA "/export/data/file" "v1");
      Alcotest.(check bool) "B's lease was broken" true
        ((Netfs.lease_stats server cB).Netfs.ls_breaks > 0);
      (* B's next lookup: warm dentries, dead lease -> gate miss consumes
         the recorded breaker span and stamps the link, then falls back. *)
      ignore (get "B re-stats" (S.stat pB "/export/data/file"));
      Trace.armed := false;
      Profiler.disarm ();
      let js = Trace.dump_chrome () in
      Alcotest.(check bool) "dump is valid JSON" true (json_valid js);
      let link = find_sub js "\"name\":\"span_link\"" 0 in
      Alcotest.(check bool) "the cross-client link was stamped" true (link >= 0);
      let breaker =
        match int_after js "\"arg\":" link with
        | Some v -> v
        | None -> Alcotest.fail "span_link instant carries no arg"
      in
      let victim =
        match int_after js "\"span\":" link with
        | Some v -> v
        | None -> Alcotest.fail "span_link instant carries no span"
      in
      Alcotest.(check bool) "breaker span is a real span" true (breaker <> 0);
      Alcotest.(check bool) "victim span is a real span" true (victim <> 0);
      Alcotest.(check bool) "two distinct requests" true (breaker <> victim);
      (* A's lane exists: at least one instant recorded under the breaker
         span before the link (the mutation's rpc_send / lease_break). *)
      let breaker_instant = find_sub js (Printf.sprintf ",\"span\":%d}" breaker) 0 in
      Alcotest.(check bool) "mutator's lane has events" true
        (breaker_instant >= 0 && breaker_instant < link);
      (* The connected flow: a flow-start anchored in the breaker's lane
         and a flow-finish at the link, same flow id. *)
      Alcotest.(check bool) "flow start from the breaker" true
        (find_sub js (Printf.sprintf "\"cat\":\"flow\",\"ph\":\"s\",\"id\":%d," breaker) 0 >= 0);
      Alcotest.(check bool) "flow finish at the victim" true
        (find_sub js (Printf.sprintf "\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d," breaker) 0
        >= 0);
      (* Both request lanes render as async brackets. *)
      List.iter
        (fun span ->
          Alcotest.(check bool)
            (Printf.sprintf "async bracket for span %d" span)
            true
            (find_sub js (Printf.sprintf "\"cat\":\"span\",\"ph\":\"b\",\"id\":%d," span) 0 >= 0
            && find_sub js (Printf.sprintf "\"cat\":\"span\",\"ph\":\"e\",\"id\":%d," span) 0 >= 0))
        [ breaker; victim ])

(* --- space-saving sketch: the classic bounds hold under eviction --- *)

let test_sketch_error_bounds () =
  Profiler.reset ();
  Fun.protect
    ~finally:(fun () ->
      Profiler.disarm ();
      Profiler.reset ())
    (fun () ->
      Profiler.arm ();
      let nkeys = Profiler.hh_k * 3 in
      let truth = Array.make nkeys 0 in
      let labels = Array.init nkeys (fun i -> Printf.sprintf "d%d" i) in
      (* Zipf-ish directed stream: low keys hot, high keys a long tail that
         forces evictions. *)
      for round = 1 to 40 do
        for key = 0 to nkeys - 1 do
          if key < 8 || round mod (1 + (key / 8)) = 0 then begin
            Profiler.hh_record key labels.(key) Profiler.m_hit;
            truth.(key) <- truth.(key) + 1
          end
        done
      done;
      Profiler.disarm ();
      let slots = Profiler.hot () in
      Alcotest.(check bool) "sketch is full" true (List.length slots = Profiler.hh_k);
      let min_total =
        List.fold_left (fun m s -> min m s.Profiler.h_total) max_int slots
      in
      List.iter
        (fun s ->
          let t = truth.(s.Profiler.h_key) in
          (* Estimate never undercounts, and overcounts by at most err. *)
          Alcotest.(check bool)
            (Printf.sprintf "key %d: true %d <= est %d" s.Profiler.h_key t s.Profiler.h_total)
            true
            (t <= s.Profiler.h_total);
          Alcotest.(check bool)
            (Printf.sprintf "key %d: est - err <= true" s.Profiler.h_key)
            true
            (s.Profiler.h_total - s.Profiler.h_err <= t);
          Alcotest.(check bool) "err bounded by the minimum total" true
            (s.Profiler.h_err <= min_total))
        slots;
      (* Any key NOT resident has true count <= the minimum resident total. *)
      let resident = List.map (fun s -> s.Profiler.h_key) slots in
      Array.iteri
        (fun key t ->
          if not (List.mem key resident) then
            Alcotest.(check bool)
              (Printf.sprintf "evicted key %d bounded by min slot" key)
              true (t <= min_total))
        truth;
      (* The heaviest keys (hot head, no eviction pressure above them) are
         all resident: the sketch's top-K promise on this stream. *)
      for key = 0 to 7 do
        Alcotest.(check bool)
          (Printf.sprintf "hot key %d resident" key)
          true (List.mem key resident)
      done;
      (* Exactness below K distinct keys. *)
      Profiler.reset ();
      Profiler.arm ();
      for key = 0 to Profiler.hh_k - 1 do
        for _ = 1 to key + 1 do
          Profiler.hh_record key "x" Profiler.m_miss
        done
      done;
      List.iter
        (fun s ->
          Alcotest.(check int) "exact while under K" 0 s.Profiler.h_err;
          Alcotest.(check int) "exact count" (s.Profiler.h_key + 1) s.Profiler.h_total)
        (Profiler.hot ()))

(* --- sliding windows: rotation, banks, and the epoch tick --- *)

let test_window_rotation () =
  Trace.reset ();
  Profiler.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disarm ();
      Profiler.disarm ();
      Trace.reset ();
      Profiler.reset ())
    (fun () ->
      Profiler.arm ();
      Trace.timing := true;
      (* record_latency feeds both the cumulative histogram and the current
         window. *)
      for i = 1 to 10 do
        Trace.record_latency Trace.cls_fast (100 * i)
      done;
      Alcotest.(check int) "cumulative sees 10" 10 (Lhist.count (Trace.latency Trace.cls_fast));
      Alcotest.(check int) "current window sees 10" 10
        (Lhist.count (Profiler.window_cur Trace.cls_fast));
      Alcotest.(check int) "previous window empty" 0
        (Lhist.count (Profiler.window_prev Trace.cls_fast));
      Profiler.rotate ();
      Alcotest.(check int) "epoch advanced" 1 (Profiler.window_epoch ());
      Alcotest.(check int) "rotation emptied the current window" 0
        (Lhist.count (Profiler.window_cur Trace.cls_fast));
      Alcotest.(check int) "last epoch preserved in prev" 10
        (Lhist.count (Profiler.window_prev Trace.cls_fast));
      Alcotest.(check int) "cumulative untouched by rotation" 10
        (Lhist.count (Trace.latency Trace.cls_fast));
      Trace.record_latency Trace.cls_fast 500;
      Alcotest.(check int) "new epoch collects afresh" 1
        (Lhist.count (Profiler.window_cur Trace.cls_fast));
      (* The virtual-clock tick: first call anchors, rotation only once the
         epoch length has elapsed. *)
      Profiler.tick ~epoch_ns:1000 0;
      Alcotest.(check int) "anchor tick does not rotate" 1 (Profiler.window_epoch ());
      Profiler.tick ~epoch_ns:1000 500;
      Alcotest.(check int) "mid-epoch tick does not rotate" 1 (Profiler.window_epoch ());
      Profiler.tick ~epoch_ns:1000 1200;
      Alcotest.(check int) "epoch end rotates" 2 (Profiler.window_epoch ());
      Alcotest.(check int) "the 500ns sample aged into prev" 1
        (Lhist.count (Profiler.window_prev Trace.cls_fast));
      (* Disarmed, window recording is a no-op. *)
      Profiler.disarm ();
      Trace.record_latency Trace.cls_fast 900;
      Alcotest.(check int) "disarmed window records nothing" 0
        (Lhist.count (Profiler.window_cur Trace.cls_fast));
      Alcotest.(check int) "cumulative still records" 12
        (Lhist.count (Trace.latency Trace.cls_fast));
      (* The windows render on the histograms surface. *)
      Alcotest.(check bool) "window lines render" true
        (contains_substring (Trace.histograms_to_string ()) "window prev fastpath_hit"))

(* --- span plumbing unit checks --- *)

let test_span_plumbing () =
  Profiler.reset ();
  Fun.protect
    ~finally:(fun () ->
      Profiler.disarm ();
      Profiler.reset ())
    (fun () ->
      Alcotest.(check int) "disarmed span_enter returns 0" 0 (Profiler.span_enter ());
      Profiler.arm ();
      let s1 = Profiler.span_enter () in
      let s2 = Profiler.span_enter () in
      Alcotest.(check bool) "spans are nonzero" true (s1 <> 0 && s2 <> 0);
      Alcotest.(check bool) "spans are distinct" true (s1 <> s2);
      Alcotest.(check int) "current = latest" s2 (Profiler.current ());
      let inside = Profiler.with_span s1 (fun () -> Profiler.current ()) in
      Alcotest.(check int) "with_span installs the carried span" s1 inside;
      Alcotest.(check int) "with_span restores on exit" s2 (Profiler.current ());
      (match Profiler.with_span s1 (fun () -> failwith "boom") with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception swallowed");
      Alcotest.(check int) "with_span restores on raise" s2 (Profiler.current ()))

let suite =
  [
    Alcotest.test_case "ring wraparound overwrites coherently; dump stays valid JSON"
      `Quick test_ring_wraparound_chrome;
    Alcotest.test_case "cross-client lease break renders as one connected flow" `Quick
      test_cross_client_flow;
    Alcotest.test_case "space-saving sketch honors its error bounds" `Quick
      test_sketch_error_bounds;
    Alcotest.test_case "sliding windows rotate; cumulative histograms unaffected" `Quick
      test_window_rotation;
    Alcotest.test_case "span minting, carry and restore" `Quick test_span_plumbing;
  ]
