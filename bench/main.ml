(* Benchmark harness: regenerates every figure and table of the paper's
   evaluation (§6).  Run with no arguments for all experiments at quick
   scale, `--full` for paper-scale parameters, or name experiment ids
   (fig1 fig2 fig3 fig6 fig7 fig8 fig9 fig10 tab1 tab2 tab3 tab4 ablation
   bechamel alloc faults trace scale) to run a subset.  See DESIGN.md for
   the experiment index. *)

module W = Dcache_workloads
module Kernel = Dcache_syscalls.Kernel
module Proc = Dcache_syscalls.Proc
module S = Dcache_syscalls.Syscalls
module Systime = Dcache_syscalls.Systime
module Config = Dcache_vfs.Config
module Phases = Dcache_vfs.Phases
module Signature = Dcache_sig.Signature
module Siphash = Dcache_sig.Siphash
module Prng = Dcache_util.Prng
open Bu

(* ------------------------------------------------------------------ *)
(* Application suite shared by Fig. 1, Table 1 and Table 2.           *)
(* ------------------------------------------------------------------ *)

type app = {
  app_name : string;
  setup_each : unit -> unit;  (** untimed per-invocation preparation *)
  run : unit -> unit;  (** the measured work *)
  loops : int;  (** read-only apps loop to rise above host noise *)
}

let make_jobs () = if !quick then 4 else 12

let build_apps (env : W.Env.t) =
  let p = env.W.Env.proc in
  let manifest =
    W.Tree_gen.build p ~root:"/src" (W.Tree_gen.source_tree ~scale:(app_scale ()) ())
  in
  ignore (W.Tree_gen.build p ~root:"/usr" (W.Tree_gen.usr_tree ~scale:(app_scale ()) ()));
  let menv = W.Apps.make_setup p ~root:"/src" ~headers:40 ~seed:11 in
  W.Apps.git_setup p ~manifest;
  let uniq = ref 0 in
  let fresh prefix =
    incr uniq;
    Printf.sprintf "/%s%d" prefix !uniq
  in
  let rm_target = ref "" in
  let nop = ignore in
  [
    {
      app_name = "find -name";
      loops = 5;
      setup_each = nop;
      run = (fun () -> ignore (W.Apps.find p ~root:"/src" ~pattern:"conf"));
    };
    {
      app_name = "tar xzf";
      loops = 1;
      setup_each = nop;
      run = (fun () -> ignore (W.Apps.tar_extract p ~manifest ~dst:(fresh "tar")));
    };
    {
      app_name = "rm -r";
      loops = 1;
      setup_each =
        (fun () ->
          let dst = fresh "rmtree" in
          rm_target := dst;
          ignore (W.Apps.tar_extract p ~manifest ~dst));
      run = (fun () -> ignore (W.Apps.rm_rf p ~root:!rm_target));
    };
    {
      app_name = "make";
      loops = 1;
      setup_each = nop;
      run = (fun () -> ignore (W.Apps.make p ~manifest ~env:menv ~headers_per_file:8 ~seed:3));
    };
    {
      app_name = Printf.sprintf "make -j%d" (make_jobs ());
      loops = 1;
      setup_each = nop;
      run =
        (fun () ->
          ignore
            (W.Apps.make_parallel p ~manifest ~env:menv ~headers_per_file:8 ~seed:3
               ~jobs:(make_jobs ())));
    };
    {
      app_name = "du -s";
      loops = 5;
      setup_each = nop;
      run = (fun () -> ignore (W.Apps.du p ~root:"/src"));
    };
    {
      app_name = "updatedb -U usr";
      loops = 5;
      setup_each = nop;
      run = (fun () -> ignore (W.Apps.updatedb p ~root:"/usr" ~output:(fresh "db")));
    };
    {
      app_name = "git status";
      loops = 5;
      setup_each = nop;
      run = (fun () -> ignore (W.Apps.git_status p ~manifest));
    };
    {
      app_name = "git diff";
      loops = 3;
      setup_each = nop;
      run = (fun () -> ignore (W.Apps.git_diff p ~manifest));
    };
  ]

(* Measurements of the two kernels are interleaved per repetition so that
   slow drift in the (noisy) host hits both kernels equally; each kernel
   reports its median run. *)
let run_app_tables ~cold env_base env_opt =
  let apps_base = build_apps env_base in
  let apps_opt = build_apps env_opt in
  (* Cold runs are dominated by deterministic virtual device time; one
     repetition is enough.  Warm runs are wall-clock and need medians. *)
  let reps = if cold then 1 else if !quick then 5 else 7 in
  let median runs =
    let sorted =
      List.sort (fun a b -> Int64.compare a.W.Runner.total_ns b.W.Runner.total_ns) runs
    in
    List.nth sorted (List.length sorted / 2)
  in
  List.map2
    (fun app_b app_o ->
      (* Paper protocol: run once and drop the first run (warm cache); for
         the cold table, caches are dropped right before every measured
         run. *)
      let one env (app : app) =
        app.setup_each ();
        if cold then W.Env.drop_caches env;
        let loops = if cold then 1 else app.loops in
        let result =
          W.Runner.run ~label:app.app_name env (fun () ->
              for _ = 1 to loops do
                app.run ()
              done)
        in
        { result with
          W.Runner.real_ns = Int64.div result.W.Runner.real_ns (Int64.of_int loops);
          virt_ns = Int64.div result.W.Runner.virt_ns (Int64.of_int loops);
          total_ns = Int64.div result.W.Runner.total_ns (Int64.of_int loops) }
      in
      app_b.setup_each ();
      app_b.run ();
      app_o.setup_each ();
      app_o.run ();
      let runs =
        List.init reps (fun _ ->
            let rb = one env_base app_b in
            let ro = one env_opt app_o in
            (rb, ro))
      in
      (app_b.app_name, median (List.map fst runs), median (List.map snd runs)))
    apps_base apps_opt

let path_stats (result : W.Runner.result) =
  let get k = try List.assoc k result.W.Runner.counters with Not_found -> 0 in
  let lookups = max 1 result.W.Runner.path_lookups in
  ( float_of_int (get "path_bytes") /. float_of_int lookups,
    float_of_int (get "path_comps") /. float_of_int lookups )

(* ------------------------------------------------------------------ *)
(* Fig. 1: fraction of execution time in path-based system calls       *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  header
    "Fig. 1 - Fraction of execution time in path-based syscalls (warm cache,\n\
     unmodified kernel; paper instrument: ftrace, ours: built-in timers)";
  let env = W.Env.disk Config.baseline in
  let apps =
    (* the parallel make accumulates syscall time across domains, which is
       not comparable to wall time; Fig. 1 keeps the serial applications *)
    List.filter (fun app -> not (String.length app.app_name > 5
                                 && String.sub app.app_name 0 6 = "make -")) (build_apps env)
  in
  row "%-16s %10s %10s %12s %10s %8s\n" "app" "acc/stat%" "open%" "chmod/chown%" "unlink%"
    "total%";
  List.iter
    (fun app ->
      app.setup_each ();
      app.run ();
      (* warm *)
      app.setup_each ();
      Systime.enabled := true;
      Systime.reset ();
      let _, total_ns = Dcache_util.Clock.time_ns app.run in
      Systime.enabled := false;
      let totals = Systime.totals () in
      let frac clazz =
        let ns = List.assoc clazz (List.map (fun (c, ns, _) -> (c, ns)) totals) in
        Int64.to_float ns /. Int64.to_float total_ns *. 100.0
      in
      let all = Int64.to_float (Systime.total_path_ns ()) /. Int64.to_float total_ns *. 100.0 in
      row "%-16s %9.1f%% %9.1f%% %11.1f%% %9.1f%% %7.1f%%\n" app.app_name
        (frac Systime.Access_stat) (frac Systime.Open) (frac Systime.Chmod_chown)
        (frac Systime.Unlink) all)
    apps

(* ------------------------------------------------------------------ *)
(* Fig. 2: the optimization trajectory (stands in for kernel versions) *)
(* ------------------------------------------------------------------ *)

let stat_8comp_latency config =
  let env = W.Env.ram config in
  let p = env.W.Env.proc in
  W.Lmbench.setup p;
  let pattern = List.find (fun q -> q.W.Lmbench.label = "8-comp") W.Lmbench.patterns in
  W.Lmbench.measure_stat p pattern ~iters:(if !quick then 3000 else 20000)

let fig2 () =
  header
    "Fig. 2 - stat latency for XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF.\n\
     Substitution: the paper plots Linux releases 2010-2015; we plot the\n\
     optimization ladder from the modeled 3.14 baseline to the full design.";
  let ladder =
    [
      ("baseline (Linux 3.14 model)", Config.baseline);
      ("+ direct lookup (DLHT+PCC+signatures)", { Config.baseline with Config.fastpath = true });
      ( "+ symlink aliases",
        { Config.baseline with Config.fastpath = true; symlink_aliases = true } );
      ( "+ directory completeness",
        {
          Config.baseline with
          Config.fastpath = true;
          symlink_aliases = true;
          dir_completeness = true;
        } );
      ("+ aggressive & deep negatives (full design)", Config.optimized);
    ]
  in
  let base = ref 0.0 in
  row "%-45s %12s %8s\n" "configuration" "stat (ns)" "vs base";
  List.iter
    (fun (name, config) ->
      let ns = median_of_runs (fun () -> stat_8comp_latency config) in
      if !base = 0.0 then base := ns;
      row "%-45s %12.1f %+7.1f%%\n" name ns (pct_gain ~base:!base ns))
    ladder;
  subheader "paper 3.3 hash-function comparison (per-signature cost, 45-byte path)";
  let path = "usr/include/gcc-x86_64-linux-gnu/sys/types.h" in
  let key = Signature.create_key ~seed:7 () in
  let sipkey = Siphash.key_of_seed 7 in
  let multilinear = latency_ns ~iters:20000 (fun () -> ignore (Signature.hash_string key path)) in
  let prf = latency_ns ~iters:20000 (fun () -> ignore (Siphash.hash256 sipkey path)) in
  row "%-45s %12.1f ns\n" "2-universal multilinear (ours, 4 lanes)" multilinear;
  row "%-45s %12.1f ns\n" "SipHash-2-4 PRF (4 lanes, software)" prf;
  row "(the paper reached the same conclusion: the PRF costs too much to win)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 3: principal components of lookup latency                      *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header
    "Fig. 3 - Principal sources of path lookup latency (ns per lookup).\n\
     Note: per-phase timers add overhead; compare shapes, not totals.";
  let iters = if !quick then 2000 else 10000 in
  let run_config label config =
    let env = W.Env.ram config in
    let p = env.W.Env.proc in
    W.Lmbench.setup p;
    List.iter
      (fun (plabel, path) ->
        ignore (S.stat p path);
        (* warm *)
        Phases.enabled := true;
        Phases.reset ();
        for _ = 1 to iters do
          ignore (S.stat p path)
        done;
        Phases.enabled := false;
        let totals = Phases.totals () in
        let per phase = Int64.to_float (List.assoc phase totals) /. float_of_int iters in
        row "%-10s %-18s %8.1f %10.1f %12.1f %10.1f %9.1f\n" label plabel (per Phases.Init)
          (per Phases.Permission) (per Phases.Scan_hash) (per Phases.Table_lookup)
          (per Phases.Finalize))
      W.Lmbench.fig3_paths
  in
  row "%-10s %-18s %8s %10s %12s %10s %9s\n" "kernel" "path" "init" "permission" "scan+hash"
    "tbl-lookup" "finalize";
  run_config "unmod" Config.baseline;
  run_config "opt" Config.optimized

(* ------------------------------------------------------------------ *)
(* Fig. 6: stat/open latency per path pattern                          *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header "Fig. 6 - stat and open latency by path pattern (ns; lower is better)";
  let iters = if !quick then 2000 else 20000 in
  let mk config =
    let env = W.Env.ram config in
    W.Lmbench.setup env.W.Env.proc;
    env
  in
  let env_base = mk Config.baseline in
  let env_opt = mk Config.optimized in
  let env_miss = mk Config.optimized in
  Dcache_core.Fastpath.set_simulate_pcc_miss (Kernel.fastpath env_miss.W.Env.kernel) true;
  let env_lex = mk { Config.optimized with Config.dotdot = Config.Dotdot_lexical } in
  let measure f env pattern = median_of_runs (fun () -> f env.W.Env.proc pattern ~iters) in
  List.iter
    (fun (syscall, f) ->
      subheader (syscall ^ " latency (ns)");
      row "%-10s %10s %10s %14s %12s\n" "pattern" "unmod" "opt" "opt-PCC-miss" "opt-lexical*";
      List.iter
        (fun pattern ->
          let base = measure f env_base pattern in
          let opt = measure f env_opt pattern in
          let miss = measure f env_miss pattern in
          let lex =
            match pattern.W.Lmbench.label with
            | "1-dotdot" | "4-dotdot" -> Printf.sprintf "%12.1f" (measure f env_lex pattern)
            | _ -> "           -"
          in
          row "%-10s %10.1f %10.1f %14.1f %s\n" pattern.W.Lmbench.label base opt miss lex)
        W.Lmbench.patterns)
    [ ("stat", W.Lmbench.measure_stat); ("open", W.Lmbench.measure_open) ];
  row "(* Plan 9 lexical dot-dot semantics, applicable to dot-dot patterns)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 7: chmod / rename latency vs cached subtree size               *)
(* ------------------------------------------------------------------ *)

let build_subtree p ~root ~depth ~files =
  ok "mkdir root" (S.mkdir_p p root);
  if depth = 0 then begin
    for i = 1 to files do
      ok "file" (S.write_file p (Printf.sprintf "%s/f%d" root i) "x")
    done
  end
  else begin
    let fanout = 4 in
    let rec dirs_at prefix level acc =
      if level = depth then prefix :: acc
      else
        List.fold_left
          (fun acc i -> dirs_at (Printf.sprintf "%s/d%d" prefix i) (level + 1) acc)
          acc
          (List.init fanout (fun i -> i))
    in
    let leaves = dirs_at root 0 [] in
    List.iter (fun d -> ok "mkdir" (S.mkdir_p p d)) leaves;
    let leaves = Array.of_list leaves in
    for i = 1 to files do
      let dir = leaves.(i mod Array.length leaves) in
      ok "file" (S.write_file p (Printf.sprintf "%s/f%d" dir i) "x")
    done
  end

let fig7 () =
  header
    "Fig. 7 - chmod/rename latency on directories with cached descendants\n\
     (us; the optimized kernel pays per-descendant invalidation, paper 3.2)";
  let cases =
    [ ("single file", 0, 1); ("depth=1, 10", 1, 10); ("depth=2, 100", 2, 100);
      ("depth=3, 1000", 3, 1000) ]
    @ if !quick then [] else [ ("depth=4, 10000", 4, 10000) ]
  in
  let measure config =
    let env = W.Env.ram config in
    let p = env.W.Env.proc in
    List.map
      (fun (label, depth, files) ->
        let root = Printf.sprintf "/t%d_%d" depth files in
        if depth = 0 && files = 1 then begin
          ok "mkdir" (S.mkdir_p p root);
          ok "single" (S.write_file p (root ^ "/only") "x")
        end
        else build_subtree p ~root ~depth ~files;
        ignore (W.Apps.du p ~root);
        (* warm every descendant *)
        let chmod_ns =
          let mode = ref 0o755 in
          latency_ns ~iters:(if files >= 1000 then 20 else 200) (fun () ->
              mode := (if !mode = 0o755 then 0o750 else 0o755);
              ok "chmod" (S.chmod p root !mode))
        in
        let rename_ns =
          let at_alt = ref false in
          let alt = root ^ "alt" in
          latency_ns ~iters:(if files >= 1000 then 20 else 200) (fun () ->
              let src, dst = if !at_alt then (alt, root) else (root, alt) in
              at_alt := not !at_alt;
              ok "rename" (S.rename p src dst))
        in
        (label, chmod_ns /. 1000.0, rename_ns /. 1000.0))
      cases
  in
  let base = measure Config.baseline in
  let opt = measure Config.optimized in
  row "%-18s %12s %12s %8s | %12s %12s %8s\n" "tree" "chmod-base" "chmod-opt" "slowdn"
    "renam-base" "renam-opt" "slowdn";
  List.iter2
    (fun (label, cb, rb) (_, co, ro) ->
      let slow a b = (b -. a) /. a *. 100.0 in
      row "%-18s %10.2fus %10.2fus %+7.0f%% | %10.2fus %10.2fus %+7.0f%%\n" label cb co
        (slow cb co) rb ro (slow rb ro))
    base opt

(* ------------------------------------------------------------------ *)
(* Fig. 8: lookup latency under concurrent threads                     *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  header
    (Printf.sprintf
       "Fig. 8 - stat/open latency vs concurrent threads (ns per op per thread).\n\
        Substitution: this host exposes %d CPU core(s); domains timeshare, so\n\
        this exercises the read-path synchronization, not HW parallelism."
       (Domain.recommended_domain_count ()));
  let iters = if !quick then 2000 else 10000 in
  let threads = [ 1; 2; 4; 8; 12 ] in
  let measure config do_open nthreads =
    let env = W.Env.ram config in
    let p = env.W.Env.proc in
    W.Lmbench.setup p;
    let path = "XXX/YYY/ZZZ/FFF" in
    ignore (ok "warm" (S.stat p path));
    let worker () =
      let wp = Proc.fork p in
      fun () ->
        for _ = 1 to iters do
          if do_open then begin
            match S.openf wp path [ Proc.O_RDONLY ] with
            | Ok fd -> ignore (S.close wp fd)
            | Error _ -> ()
          end
          else ignore (S.stat wp path)
        done
    in
    let bodies = List.init nthreads (fun _ -> worker ()) in
    let t0 = Dcache_util.Clock.now_ns () in
    let domains = List.map (fun body -> Domain.spawn body) bodies in
    List.iter Domain.join domains;
    let t1 = Dcache_util.Clock.now_ns () in
    (* wall time divided by per-thread iterations and threads: per-op cost
       normalized for timesharing *)
    Int64.to_float (Int64.sub t1 t0) /. float_of_int (iters * nthreads)
  in
  row "%-8s %12s %12s %12s %12s\n" "threads" "stat-base" "stat-opt" "open-base" "open-opt";
  List.iter
    (fun n ->
      row "%-8d %12.1f %12.1f %12.1f %12.1f\n" n
        (measure Config.baseline false n)
        (measure Config.optimized false n)
        (measure Config.baseline true n)
        (measure Config.optimized true n))
    threads

(* ------------------------------------------------------------------ *)
(* Fig. 9: readdir and mkstemp latency vs directory size               *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  header "Fig. 9 - readdir and mkstemp latency vs directory size (us)";
  let sizes = [ 10; 100; 1000 ] @ if !quick then [] else [ 10000 ] in
  let measure config =
    (* Disk-backed fs: the readdir win comes from skipping on-disk dirent
       re-parsing (paper 5.1). *)
    let env = W.Env.disk config in
    let p = env.W.Env.proc in
    List.map
      (fun size ->
        let dir = Printf.sprintf "/dir%d" size in
        W.Webserver.setup p ~dir ~files:size;
        ignore (ok "warm" (S.readdir_path p dir));
        let readdir_ns =
          env_latency_ns env ~iters:(max 20 (2000 / size)) (fun () ->
              ignore (ok "rd" (S.readdir_path p dir)))
        in
        let prng = Prng.create size in
        let mkstemp_ns =
          env_latency_ns env ~iters:100 (fun () ->
              let fd, path = ok "mkstemp" (S.mkstemp ~prng p dir) in
              ok "close" (S.close p fd);
              ok "unlink" (S.unlink p path))
        in
        (size, readdir_ns /. 1000.0, mkstemp_ns /. 1000.0))
      sizes
  in
  let base = measure Config.baseline in
  let opt = measure Config.optimized in
  row "%-8s %13s %13s %8s | %13s %13s %8s\n" "files" "readdir-base" "readdir-opt" "gain"
    "mkstmp-base" "mkstmp-opt" "gain";
  List.iter2
    (fun (size, rb, mb) (_, ro, mo) ->
      row "%-8d %11.2fus %11.2fus %+7.0f%% | %11.2fus %11.2fus %+7.0f%%\n" size rb ro
        (pct_gain ~base:rb ro) mb mo (pct_gain ~base:mb mo))
    base opt

(* ------------------------------------------------------------------ *)
(* Fig. 10: Dovecot maildir throughput                                 *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  header "Fig. 10 - Dovecot IMAP model: mark/unmark throughput (ops/s)";
  let sizes = [ 50; 100; 500; 1000 ] @ if !quick then [] else [ 2000; 3000 ] in
  let ops = if !quick then 60 else 200 in
  let measure config size =
    let env = W.Env.disk config in
    let p = env.W.Env.proc in
    let mbox = W.Maildir.setup p ~root:(Printf.sprintf "/mail%d" size) ~messages:size ~seed:7 in
    ignore (W.Maildir.run_ops p mbox ~ops:5 ~seed:1);
    (* warm *)
    median_of_runs (fun () ->
        let result =
          W.Runner.run env (fun () -> ignore (W.Maildir.run_ops p mbox ~ops ~seed:2))
        in
        float_of_int ops /. seconds result)
  in
  row "%-10s %14s %14s %8s\n" "mailbox" "base (ops/s)" "opt (ops/s)" "gain";
  List.iter
    (fun size ->
      let base = measure Config.baseline size in
      let opt = measure Config.optimized size in
      row "%-10d %14.0f %14.0f %+7.1f%%\n" size base opt ((opt -. base) /. base *. 100.0))
    sizes

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2: application execution time, warm and cold           *)
(* ------------------------------------------------------------------ *)

let app_table ~cold title =
  header title;
  let env_base = W.Env.disk Config.baseline in
  let env_opt = W.Env.disk Config.optimized in
  let rows = run_app_tables ~cold env_base env_opt in
  row "%-16s %5s %4s | %12s %6s %6s | %12s %8s\n" "app" "l" "#" "unmod (s)" "hit%" "neg%"
    "opt (s)" "gain";
  List.iter
    (fun (name, rb, ro) ->
      let l, comps = path_stats rb in
      row "%-16s %5.0f %4.1f | %12.4f %5.1f%% %5.1f%% | %12.4f %+7.2f%%\n" name l comps
        (seconds rb)
        (rb.W.Runner.hit_rate *. 100.0)
        (rb.W.Runner.neg_rate *. 100.0)
        (seconds ro) (W.Runner.gain ~baseline:rb ro))
    rows

let tab1 () =
  app_table ~cold:false
    "Table 1 - Application execution time, warm cache (disk-backed extfs,\n\
     warm page cache; l = avg path bytes, # = avg components)"

let tab2 () =
  app_table ~cold:true
    "Table 2 - Application execution time, cold cache (dcache and page cache\n\
     dropped; simulated disk latency dominates, gains vanish as in the paper)"

(* ------------------------------------------------------------------ *)
(* Table 3: Apache directory-listing throughput                        *)
(* ------------------------------------------------------------------ *)

let tab3 () =
  header "Table 3 - Apache-style generated directory listings (requests/s)";
  let sizes = [ 10; 100; 1000 ] @ if !quick then [] else [ 10000 ] in
  let measure config size =
    let env = W.Env.disk config in
    let p = env.W.Env.proc in
    let dir = Printf.sprintf "/www%d" size in
    W.Webserver.setup p ~dir ~files:size;
    ignore (W.Webserver.request p ~dir);
    let iters = max 5 (2000 / size) in
    let ns = env_latency_ns env ~iters (fun () -> ignore (W.Webserver.request p ~dir)) in
    1e9 /. ns
  in
  row "%-10s %14s %14s %8s\n" "# files" "unmod (req/s)" "opt (req/s)" "gain";
  List.iter
    (fun size ->
      let base = measure Config.baseline size in
      let opt = measure Config.optimized size in
      row "%-10d %14.0f %14.0f %+7.1f%%\n" size base opt ((opt -. base) /. base *. 100.0))
    sizes

(* ------------------------------------------------------------------ *)
(* Table 4: lines of code                                              *)
(* ------------------------------------------------------------------ *)

let count_loc dir =
  let rec files d =
    match Sys.readdir d with
    | entries ->
      Array.to_list entries
      |> List.concat_map (fun e ->
             let path = Filename.concat d e in
             if Sys.is_directory path then files path
             else if Filename.check_suffix e ".ml" || Filename.check_suffix e ".mli" then
               [ path ]
             else [])
    | exception Sys_error _ -> []
  in
  List.fold_left
    (fun acc path ->
      let ic = open_in path in
      let rec count n =
        match input_line ic with _ -> count (n + 1) | exception End_of_file -> n
      in
      let n = count 0 in
      close_in ic;
      acc + n)
    0 (files dir)

let tab4 () =
  header
    "Table 4 - Lines of code (this reproduction; the paper counts its Linux\n\
     patch the same way with sloccount)";
  let root = if Sys.file_exists "lib" then "." else ".." in
  let groups =
    [
      ("direct-lookup optimizations (lib/core, lib/sig)", [ "lib/core"; "lib/sig" ]);
      ("VFS incl. dcache hooks (lib/vfs)", [ "lib/vfs" ]);
      ("syscall layer (lib/syscalls)", [ "lib/syscalls" ]);
      ("low-level file systems (lib/fs)", [ "lib/fs" ]);
      ("storage substrate (lib/storage)", [ "lib/storage" ]);
      ("security modules (lib/cred)", [ "lib/cred" ]);
      ("support (lib/types, lib/util)", [ "lib/types"; "lib/util" ]);
      ("workloads (lib/workloads)", [ "lib/workloads" ]);
    ]
  in
  row "%-48s %10s\n" "component" "LoC";
  let total = ref 0 in
  List.iter
    (fun (name, dirs) ->
      let loc = List.fold_left (fun acc d -> acc + count_loc (Filename.concat root d)) 0 dirs in
      total := !total + loc;
      row "%-48s %10d\n" name loc)
    groups;
  row "%-48s %10d\n" "total library code" !total

(* ------------------------------------------------------------------ *)
(* Ablations (paper 6.3, 6.5 and DESIGN.md design choices)             *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "Ablations";
  subheader
    "PCC capacity vs updatedb gain (paper 6.3: gain drops when the tree\n\
     outgrows the PCC)";
  let tree_scale = scale () *. 4.0 in
  let run_updatedb config =
    let env = W.Env.disk config in
    let p = env.W.Env.proc in
    ignore (W.Tree_gen.build p ~root:"/usr" (W.Tree_gen.usr_tree ~scale:tree_scale ()));
    let uniq = ref 0 in
    let go () =
      incr uniq;
      ignore (W.Apps.updatedb p ~root:"/usr" ~output:(Printf.sprintf "/db%d" !uniq))
    in
    go ();
    (* warm *)
    let t =
      median_of_runs (fun () ->
          seconds
            (W.Runner.run env (fun () ->
                 for _ = 1 to 5 do
                   go ()
                 done))
          /. 5.0)
    in
    Kernel.reset_stats env.W.Env.kernel;
    go ();
    let lookups = max 1 (counter env "path_lookup") in
    let fallbacks = counter env "fastpath_fallback" in
    (t, 100.0 *. float_of_int fallbacks /. float_of_int lookups)
  in
  let base, _ = run_updatedb Config.baseline in
  row "%-34s %10.4fs\n" "baseline" base;
  List.iter
    (fun entries ->
      let t, fallback_pct =
        run_updatedb
          { Config.optimized with Config.pcc_entries = entries; pcc_max_entries = entries }
      in
      row "PCC %6d entries (%4d KB)        %10.4fs  gain %+5.1f%%  slowpath %4.1f%%\n"
        entries (entries * 16 / 1024) t (pct_gain ~base t) fallback_pct)
    [ 64; 256; 1024; 4096; 16384 ];
  (let t, fallback_pct =
     run_updatedb
       { Config.optimized with Config.pcc_entries = 64; pcc_max_entries = 16384 }
   in
   row "PCC dynamic 64 -> 16384 (extension) %9.4fs  gain %+5.1f%%  slowpath %4.1f%%\n" t
     (pct_gain ~base t) fallback_pct);

  subheader "deep negative dentries (paper 6.1: without them, neg-d is much worse)";
  let neg_d = List.find (fun q -> q.W.Lmbench.label = "neg-d") W.Lmbench.patterns in
  let neg_f = List.find (fun q -> q.W.Lmbench.label = "neg-f") W.Lmbench.patterns in
  let stat_pattern config pattern =
    let env = W.Env.ram config in
    W.Lmbench.setup env.W.Env.proc;
    median_of_runs (fun () ->
        W.Lmbench.measure_stat env.W.Env.proc pattern
          ~iters:(if !quick then 2000 else 10000))
  in
  List.iter
    (fun (label, config) ->
      row "%-34s neg-f %8.1f ns   neg-d %8.1f ns\n" label (stat_pattern config neg_f)
        (stat_pattern config neg_d))
    [
      ("baseline", Config.baseline);
      ("optimized w/o deep negatives", { Config.optimized with Config.deep_negative = false });
      ("optimized (full)", Config.optimized);
    ];

  subheader "directory completeness (readdir of a 1000-entry directory)";
  let readdir_1000 config =
    let env = W.Env.disk config in
    let p = env.W.Env.proc in
    W.Webserver.setup p ~dir:"/big" ~files:1000;
    ignore (ok "warm" (S.readdir_path p "/big"));
    env_latency_ns env ~iters:20 (fun () -> ignore (ok "rd" (S.readdir_path p "/big")))
    /. 1000.0
  in
  List.iter
    (fun (label, config) -> row "%-34s %10.2f us\n" label (readdir_1000 config))
    [
      ("baseline", Config.baseline);
      ("optimized w/o completeness", { Config.optimized with Config.dir_completeness = false });
      ("optimized (full)", Config.optimized);
    ];

  subheader
    "completeness integration (paper 2.3/5.1): ours (in the dcache) vs a\n\
     Solaris-DNLC-style separate listing cache (1000-entry directory, disk)";
  let completeness_trial label config =
    let env = W.Env.disk config in
    let p = env.W.Env.proc in
    W.Webserver.setup p ~dir:"/big" ~files:1000;
    (* (a) repeated readdir *)
    ignore (ok "warm" (S.readdir_path p "/big"));
    let readdir_us =
      env_latency_ns env ~iters:20 (fun () -> ignore (ok "rd" (S.readdir_path p "/big")))
      /. 1000.0
    in
    (* (b) readdir-then-stat of every entry, from a dropped dcache *)
    W.Env.drop_caches env;
    let entries = ok "list" (S.readdir_path p "/big") in
    let stat_us =
      let v0 = Dcache_util.Vclock.elapsed_ns env.W.Env.vclock in
      let t0 = Dcache_util.Clock.now_ns () in
      List.iter
        (fun (e : Dcache_fs.Fs_intf.dirent) ->
          ignore (ok "stat" (S.stat p ("/big/" ^ e.Dcache_fs.Fs_intf.name))))
        entries;
      let t1 = Dcache_util.Clock.now_ns () in
      let v1 = Dcache_util.Vclock.elapsed_ns env.W.Env.vclock in
      Int64.to_float (Int64.add (Int64.sub t1 t0) (Int64.sub v1 v0))
      /. float_of_int (List.length entries) /. 1000.0
    in
    (* (c) secure temp file creation *)
    let prng = Prng.create 3 in
    let mkstemp_us =
      env_latency_ns env ~iters:100 (fun () ->
          let fd, path = ok "mkstemp" (S.mkstemp ~prng p "/big") in
          ok "close" (S.close p fd);
          ok "unlink" (S.unlink p path))
      /. 1000.0
    in
    row "%-36s readdir %9.1f us   stat-after %6.2f us   mkstemp %7.2f us\n" label
      readdir_us stat_us mkstemp_us
  in
  completeness_trial "no completeness (baseline)" Config.baseline;
  completeness_trial "separate cache (Solaris DNLC style)"
    { Config.optimized with Config.dir_completeness = false; dnlc_style_completeness = true };
  completeness_trial "integrated (this paper)" Config.optimized;

  subheader "signature width vs 8-component stat latency (paper 3.3)";
  List.iter
    (fun bits ->
      let ns =
        median_of_runs (fun () ->
            stat_8comp_latency { Config.optimized with Config.sig_bits = bits })
      in
      row "sig_bits = %-22d %10.1f ns\n" bits ns)
    [ 64; 128; 236 ];

  subheader "*at() family: single-component lookups from a dirfd (paper 6.1)";
  let at_latency config =
    let env = W.Env.ram config in
    let p = env.W.Env.proc in
    W.Lmbench.setup p;
    let dirfd =
      ok "open dir" (S.openf p "/XXX/YYY/ZZZ" [ Proc.O_RDONLY; Proc.O_DIRECTORY ])
    in
    ignore (ok "warm" (S.fstatat p dirfd "FFF" ()));
    let fstatat_ns =
      latency_ns ~iters:(if !quick then 3000 else 15000) (fun () ->
          ignore (ok "fstatat" (S.fstatat p dirfd "FFF" ())))
    in
    let openat_ns =
      latency_ns ~iters:(if !quick then 3000 else 15000) (fun () ->
          let fd = ok "openat" (S.openat p dirfd "FFF" [ Proc.O_RDONLY ]) in
          ok "close" (S.close p fd))
    in
    (fstatat_ns, openat_ns)
  in
  let fb, ob = at_latency Config.baseline in
  let fo, oo = at_latency Config.optimized in
  row "%-34s fstatat %8.1f ns   openat %8.1f ns\n" "baseline" fb ob;
  row "%-34s fstatat %8.1f ns   openat %8.1f ns\n" "optimized" fo oo;
  row "%-34s fstatat %+7.1f%%    openat %+7.1f%%\n" "gain" (pct_gain ~base:fb fo)
    (pct_gain ~base:ob oo);

  subheader
    "network file systems (paper 4.3): stateless revalidation nullifies the\n\
     fastpath; a stateful callback protocol keeps it (per-lookup latency\n\
     including 120us-RTT RPC time)";
  let netfs_latency protocol config =
    let clock = Dcache_util.Vclock.create () in
    let backing = Dcache_fs.Ramfs.create () in
    let server = Dcache_fs.Netfs.server ~clock backing in
    let kernel =
      Kernel.create ~config ~root_fs:(Dcache_fs.Netfs.client ~protocol server) ()
    in
    let p = Proc.spawn kernel in
    ok "tree" (S.mkdir_p p "/export/a/b");
    ok "file" (S.write_file p "/export/a/b/file" "remote");
    ignore (ok "warm" (S.stat p "/export/a/b/file"));
    median_of_runs (fun () ->
        let v0 = Dcache_util.Vclock.elapsed_ns clock in
        let t0 = Dcache_util.Clock.now_ns () in
        let iters = 500 in
        for _ = 1 to iters do
          ignore (ok "stat" (S.stat p "/export/a/b/file"))
        done;
        let t1 = Dcache_util.Clock.now_ns () in
        let v1 = Dcache_util.Vclock.elapsed_ns clock in
        Int64.to_float (Int64.add (Int64.sub t1 t0) (Int64.sub v1 v0)) /. float_of_int iters)
  in
  List.iter
    (fun (label, protocol) ->
      let base = netfs_latency protocol Config.baseline in
      let opt = netfs_latency protocol Config.optimized in
      row "%-34s unmod %10.1f ns   opt %10.1f ns   gain %+6.1f%%\n" label base opt
        (pct_gain ~base opt))
    [
      ("stateless (NFS v2/3 model)", Dcache_fs.Netfs.Stateless);
      ("stateful callbacks (AFS model)", Dcache_fs.Netfs.Stateful);
    ];

  subheader
    "on-disk vs in-memory full-path hashing (paper 7): renaming a directory\n\
     with N descendants costs O(N) disk rewrites on a DLFS-style store, vs\n\
     O(N) memory work here and O(1) on the baseline (us, incl. virtual disk)";
  let dlfs_rename descendants =
    let clock = Dcache_util.Vclock.create () in
    let cache =
      Dcache_storage.Pagecache.create ~capacity_pages:16384
        (Dcache_storage.Blockdev.create clock)
    in
    let t = Dcache_fs.Dlfs.mkfs_and_mount cache in
    ok "top" (Dcache_fs.Dlfs.create t "/tree" Dcache_types.File_kind.Directory);
    for i = 0 to descendants - 1 do
      ok "rec" (Dcache_fs.Dlfs.create t (Printf.sprintf "/tree/f%d" i)
                  Dcache_types.File_kind.Regular)
    done;
    median_of_runs (fun () ->
        let v0 = Dcache_util.Vclock.elapsed_ns clock in
        let t0 = Dcache_util.Clock.now_ns () in
        ignore (ok "mv" (Dcache_fs.Dlfs.rename_dir t "/tree" "/moved"));
        ignore (ok "mv back" (Dcache_fs.Dlfs.rename_dir t "/moved" "/tree"));
        let t1 = Dcache_util.Clock.now_ns () in
        let v1 = Dcache_util.Vclock.elapsed_ns clock in
        Int64.to_float (Int64.add (Int64.sub t1 t0) (Int64.sub v1 v0)) /. 2.0 /. 1000.0)
  in
  let dcache_rename config descendants =
    let env = W.Env.ram config in
    let p = env.W.Env.proc in
    ok "top" (S.mkdir_p p "/tree");
    for i = 0 to descendants - 1 do
      ok "f" (S.write_file p (Printf.sprintf "/tree/f%d" i) "x")
    done;
    ignore (W.Apps.du p ~root:"/tree");
    (* cache all descendants *)
    median_of_runs (fun () ->
        let t0 = Dcache_util.Clock.now_ns () in
        ok "mv" (S.rename p "/tree" "/moved");
        ok "mv back" (S.rename p "/moved" "/tree");
        let t1 = Dcache_util.Clock.now_ns () in
        Int64.to_float (Int64.sub t1 t0) /. 2.0 /. 1000.0)
  in
  List.iter
    (fun n ->
      row "%6d descendants:  baseline %8.1f us   optimized (in-mem) %8.1f us   DLFS (on-disk) %10.1f us\n"
        n
        (dcache_rename Config.baseline n)
        (dcache_rename Config.optimized n)
        (dlfs_rename n))
    [ 10; 100; 1000 ];

  subheader "iBench-like trace replay (15% path lookups, 85% other syscalls)";
  let trace_time config =
    let env = W.Env.ram config in
    let p = env.W.Env.proc in
    let m = W.Tree_gen.build p ~root:"/src" (W.Tree_gen.source_tree ~scale:(scale ()) ()) in
    (* read-only mix so the trace replays identically every repetition *)
    let mix =
      { W.Trace.ibench_like with W.Trace.open_write_w = 0; mutate_w = 0; other_w = 87 }
    in
    let trace =
      W.Trace.generate ~manifest:m ~mix ~events:(if !quick then 30000 else 150000)
        ~locality:0.6 ~seed:17
    in
    ignore (W.Trace.replay p trace);
    (* warm *)
    median_of_runs (fun () ->
        let _, ns = Dcache_util.Clock.time_ns (fun () -> ignore (W.Trace.replay p trace)) in
        Int64.to_float ns /. 1e6)
  in
  let base = trace_time Config.baseline in
  let opt = trace_time Config.optimized in
  row "%-34s unmod %8.2f ms   opt %8.2f ms   gain %+6.1f%%\n" "trace replay" base opt
    (pct_gain ~base opt);

  subheader "primary hash table occupancy (paper 6.5)";
  (* the paper reports 58% empty / 34% single-entry buckets on its testbed *)
  let env = W.Env.ram Config.optimized in
  let p = env.W.Env.proc in
  ignore (W.Tree_gen.build p ~root:"/src" (W.Tree_gen.source_tree ~scale:(scale ()) ()));
  ignore (W.Apps.du p ~root:"/src");
  let hist = Dcache_vfs.Dcache.bucket_occupancy (Kernel.dcache env.W.Env.kernel) in
  let total = Array.fold_left ( + ) 0 hist in
  Array.iteri
    (fun len count ->
      if count > 0 then
        row "buckets with %s%d entries: %7d (%.1f%%)\n"
          (if len = Array.length hist - 1 then ">=" else "")
          len count
          (float_of_int count /. float_of_int total *. 100.0))
    hist;

  subheader "dot-dot semantics (Linux vs Plan 9 lexical, paper 4.2)";
  let dd1 = List.find (fun q -> q.W.Lmbench.label = "1-dotdot") W.Lmbench.patterns in
  let dd4 = List.find (fun q -> q.W.Lmbench.label = "4-dotdot") W.Lmbench.patterns in
  List.iter
    (fun (label, config) ->
      row "%-34s 1-dotdot %8.1f ns   4-dotdot %8.1f ns\n" label (stat_pattern config dd1)
        (stat_pattern config dd4))
    [
      ("baseline", Config.baseline);
      ("optimized, Linux dot-dot", Config.optimized);
      ( "optimized, lexical dot-dot",
        { Config.optimized with Config.dotdot = Config.Dotdot_lexical } );
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  header "Bechamel microbenchmarks (OLS ns/run estimates, monotonic clock)";
  let open Bechamel in
  let make_env config =
    let env = W.Env.ram config in
    W.Lmbench.setup env.W.Env.proc;
    env
  in
  let env_base = make_env Config.baseline in
  let env_opt = make_env Config.optimized in
  let stat_test name (env : W.Env.t) path =
    (* [open Bechamel] shadows our [S] alias with Bechamel.S *)
    let stat = Dcache_syscalls.Syscalls.stat in
    Test.make ~name (Staged.stage (fun () -> ignore (stat env.W.Env.proc path)))
  in
  let test =
    Test.make_grouped ~name:"stat"
      [
        stat_test "1comp/baseline" env_base "FFF";
        stat_test "1comp/optimized" env_opt "FFF";
        stat_test "8comp/baseline" env_base "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF";
        stat_test "8comp/optimized" env_opt "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF";
        stat_test "negative/baseline" env_base "XXX/YYY/ZZZ/NNN";
        stat_test "negative/optimized" env_opt "XXX/YYY/ZZZ/NNN";
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      instance raw
  in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) ols [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> row "%-28s %12.1f ns/run\n" name est
      | Some _ | None -> row "%-28s %12s\n" name "n/a")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* GC-aware allocation measurement                                     *)
(* ------------------------------------------------------------------ *)

(* Top-level so the probe loop passes a statically-allocated closure. *)
let alloc_within _mnt _dentry = Ok ()

let alloc () =
  header "Allocation per lookup (Gc.minor_words delta over warm loops)";
  let iters = if !quick then 20_000 else 100_000 in
  let make_env config =
    let env = W.Env.ram config in
    W.Lmbench.setup env.W.Env.proc;
    env
  in
  let env_base = make_env Config.baseline in
  let env_opt = make_env Config.optimized in
  let line label words ns = row "%-44s %9.2f words/op %9.1f ns/op\n" label words ns in
  let syscall_line label (env : W.Env.t) path =
    let p = env.W.Env.proc in
    let f () = ignore (S.stat p path) in
    f ();
    (* warm the caches before either measurement *)
    line label (Stats.minor_words_per_op ~iters f) (latency_ns f)
  in
  subheader "stat() - syscall layer, warm caches";
  List.iter
    (fun (label, env) ->
      syscall_line (label ^ " 1comp") env "FFF";
      syscall_line (label ^ " 8comp") env "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF";
      syscall_line (label ^ " negative") env "XXX/YYY/ZZZ/NNN")
    [ ("baseline", env_base); ("optimized", env_opt) ];

  subheader "fastpath probe - Fastpath.lookup_into, warm DLHT hit (expect 0 words)";
  let fp = Kernel.fastpath env_opt.W.Env.kernel in
  (* The ctx is built once: per-call construction is the caller's cost, not
     the probe's (Proc.walk_ctx allocates a record). *)
  let ctx = Proc.walk_ctx env_opt.W.Env.proc in
  List.iter
    (fun (label, path) ->
      let f () =
        ignore (Dcache_core.Fastpath.lookup_into fp ctx path ~within:alloc_within)
      in
      f ();
      line label (Stats.minor_words_per_op ~iters f) (latency_ns f))
    [
      ("probe 1comp", "FFF");
      ("probe 8comp", "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF");
      ("probe negative", "XXX/YYY/ZZZ/NNN");
    ];

  subheader "path hashing - in-place scanner vs Path.split + feed_string";
  let key = Signature.create_key ~seed:Config.optimized.Config.hash_seed () in
  let ms = Signature.mstate () in
  let buf = Signature.buf () in
  let path = "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF" in
  let inplace () =
    Signature.mstate_reset ms;
    ignore
      (Signature.hash_path_into key ms ~max_name:Dcache_vfs.Path.max_name path ~pos:0);
    Signature.finalize_into key ms buf
  in
  let listed () =
    match Dcache_vfs.Path.split path with
    | Error _ -> ()
    | Ok comps ->
      let state =
        List.fold_left
          (fun st comp ->
            match comp with
            | Dcache_vfs.Path.Cur | Dcache_vfs.Path.Up -> st
            | Dcache_vfs.Path.Name name ->
              Signature.feed_string key (Signature.feed_char key st '/') name)
          Signature.empty_state comps
      in
      ignore (Signature.finalize key state)
  in
  inplace ();
  listed ();
  line "in-place hash_path_into (8 comps)" (Stats.minor_words_per_op ~iters inplace)
    (latency_ns inplace);
  line "Path.split + feed_string (8 comps)" (Stats.minor_words_per_op ~iters listed)
    (latency_ns listed)

(* ------------------------------------------------------------------ *)
(* Fault injection: hook overhead and degraded-mode behaviour          *)
(* ------------------------------------------------------------------ *)

module Fault = Dcache_util.Fault

let faults () =
  header "Fault injection: disabled hooks are free, armed faults degrade honestly";
  let line label words ns = row "%-44s %9.2f words/op %9.1f ns/op\n" label words ns in

  subheader
    "disabled-hook overhead - warm fastpath probe over the simulated disk\n\
     (attaching an injector with every site Off must not change ns/op and\n\
     must keep the probe at 0 words/op)";
  let words_iters = if !quick then 20_000 else 100_000 in
  let probe_line label (env : W.Env.t) =
    let fp = Kernel.fastpath env.W.Env.kernel in
    let ctx = Proc.walk_ctx env.W.Env.proc in
    let f () =
      ignore
        (Dcache_core.Fastpath.lookup_into fp ctx "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF"
           ~within:alloc_within)
    in
    f ();
    line label (Stats.minor_words_per_op ~iters:words_iters f) (latency_ns f)
  in
  let env_plain = W.Env.disk Config.optimized in
  W.Lmbench.setup env_plain.W.Env.proc;
  probe_line "fastpath probe, no injector" env_plain;
  let inj = Fault.create ~seed:42 () in
  let env_hooked = W.Env.disk ~faults:inj Config.optimized in
  W.Lmbench.setup env_hooked.W.Env.proc;
  probe_line "fastpath probe, injector attached (Off)" env_hooked;
  let idle_site = Fault.site inj "blockdev.read_eio" in
  let fire () = ignore (Fault.fire idle_site) in
  fire ();
  line "raw disarmed Fault.fire"
    (Stats.minor_words_per_op ~iters:words_iters fire)
    (latency_ns fire);

  subheader
    "warm lookup latency vs RPC loss rate (stat of /export/a/b/file, real +\n\
     virtual ns/op; each drop costs the 1ms client timeout plus exponential\n\
     backoff, and a give-up surfaces EIO instead of a stale answer)";
  let net_latency protocol rate =
    let clock = Dcache_util.Vclock.create () in
    let backing = Dcache_fs.Ramfs.create () in
    let inj = Fault.create ~seed:7 () in
    let server = Dcache_fs.Netfs.server ~faults:inj ~clock backing in
    let kernel =
      Kernel.create ~config:Config.optimized
        ~root_fs:(Dcache_fs.Netfs.client ~protocol server) ()
    in
    let p = Proc.spawn kernel in
    ok "tree" (S.mkdir_p p "/export/a/b");
    ok "file" (S.write_file p "/export/a/b/file" "remote");
    ignore (S.stat p "/export/a/b/file");
    let drop = Fault.site inj "netfs.drop" in
    if rate > 0.0 then Fault.arm drop (Fault.Probability rate);
    Dcache_fs.Netfs.reset_rpc_stats server;
    let iters = if !quick then 400 else 2000 in
    let eio = ref 0 in
    let v0 = Dcache_util.Vclock.elapsed_ns clock in
    let t0 = Dcache_util.Clock.now_ns () in
    for _ = 1 to iters do
      match S.stat p "/export/a/b/file" with Ok _ -> () | Error _ -> incr eio
    done;
    let t1 = Dcache_util.Clock.now_ns () in
    let v1 = Dcache_util.Vclock.elapsed_ns clock in
    let ns =
      Int64.to_float (Int64.add (Int64.sub t1 t0) (Int64.sub v1 v0))
      /. float_of_int iters
    in
    (ns, !eio, Dcache_fs.Netfs.rpc_stats server)
  in
  List.iter
    (fun rate ->
      List.iter
        (fun (label, protocol) ->
          let ns, eio, st = net_latency protocol rate in
          let drops = st.Dcache_fs.Netfs.rs_drops in
          let retries = st.Dcache_fs.Netfs.rs_retries in
          let giveups = st.Dcache_fs.Netfs.rs_giveups in
          row
            "loss %4.1f%%  %-26s %12.1f ns/op   drops %5d  retries %5d  giveups %3d (EIO stats %d)\n"
            (rate *. 100.0) label ns drops retries giveups eio)
        [
          ("stateless (NFS v2/3)", Dcache_fs.Netfs.Stateless);
          ("stateful (AFS model)", Dcache_fs.Netfs.Stateful);
        ])
    [ 0.0; 0.01; 0.05; 0.1 ];

  subheader
    "transient disk EIO - degraded mode: a 5% read-EIO campaign over\n\
     cold-cache lookups must propagate errors without polluting the cache";
  let inj = Fault.create ~seed:9 () in
  let env = W.Env.disk ~faults:inj Config.optimized in
  W.Lmbench.setup env.W.Env.proc;
  W.Env.reset_measurement env;
  let site = Fault.site inj "blockdev.read_eio" in
  Fault.arm site (Fault.Probability 0.05);
  let p = env.W.Env.proc in
  let rounds = if !quick then 40 else 200 in
  let eio = ref 0 and okc = ref 0 in
  for _ = 1 to rounds do
    W.Env.drop_caches env;
    match S.stat p "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF" with
    | Ok _ -> incr okc
    | Error _ -> incr eio
  done;
  Fault.disarm site;
  let rep = Kernel.scrub env.W.Env.kernel in
  row "%-44s %d ok, %d EIO over %d cold lookups\n" "lookup outcomes" !okc !eio rounds;
  row "%-44s %d injected / %d arrivals\n" "blockdev.read_eio site"
    (Fault.injected site) (Fault.arrivals site);
  row "%-44s %d (paths exist; EIO must not cache absence)\n" "negative dentries created"
    (counter env "negative_created");
  row "%-44s %d fallbacks declined to populate\n" "fastpath_eio_no_populate"
    (counter env "fastpath_eio_no_populate");
  row "%-44s dcache %d, dlht %d quarantined (expect 0)\n" "post-campaign scrub"
    rep.Kernel.dcache_quarantined rep.Kernel.dlht_quarantined

(* ------------------------------------------------------------------ *)
(* Tracing & metrics: probe-site overhead and the observability surface *)
(* ------------------------------------------------------------------ *)

module Utrace = Dcache_util.Trace

let trace () =
  header "Tracing & metrics (compiled in always; disarmed must cost ~a branch)";
  let words_iters = if !quick then 20_000 else 100_000 in
  let line label words ns = row "%-46s %9.2f words/op %9.1f ns/op\n" label words ns in

  subheader "warm 8-component fastpath probe under each tracing mode";
  let env = W.Env.ram Config.optimized in
  W.Lmbench.setup env.W.Env.proc;
  let fp = Kernel.fastpath env.W.Env.kernel in
  let ctx = Proc.walk_ctx env.W.Env.proc in
  let f () =
    ignore
      (Dcache_core.Fastpath.lookup_into fp ctx "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF"
         ~within:alloc_within)
  in
  f ();
  Utrace.reset ();
  Utrace.disarm ();
  let measure label =
    line label (Stats.minor_words_per_op ~iters:words_iters f) (latency_ns f)
  in
  measure "probe, tracing disarmed (the default)";
  Utrace.armed := true;
  measure "probe, event ring armed (seq timestamps)";
  Utrace.timing := true;
  measure "probe, ring + latency histograms (2 clock reads)";
  Utrace.real_clock := true;
  measure "probe, ring w/ real-clock stamps (boxes Int64)";
  Utrace.real_clock := false;
  Utrace.timing := false;
  let stamp () = Utrace.stamp Utrace.ev_fast_hit 7 in
  stamp ();
  line "raw armed Trace.stamp"
    (Stats.minor_words_per_op ~iters:words_iters stamp)
    (latency_ns stamp);
  Utrace.disarm ();

  subheader
    "observability surface after a maildir-style workload (timing armed:\n\
     deliveries, warm re-stats, negative probes, one rename + one chmod)";
  Utrace.reset ();
  Utrace.arm ();
  let env = W.Env.ram Config.optimized in
  let p = env.W.Env.proc in
  ok "tree" (S.mkdir_p p "/mail/cur");
  for i = 1 to 50 do
    ok "deliver" (S.write_file p (Printf.sprintf "/mail/cur/m%d" i) "x")
  done;
  for _ = 1 to 20 do
    for i = 1 to 50 do
      ignore (S.stat p (Printf.sprintf "/mail/cur/m%d" i))
    done
  done;
  for _ = 1 to 200 do
    ignore (S.stat p "/mail/cur/absent")
  done;
  ok "rename" (S.rename p "/mail/cur/m1" "/mail/cur/m1.read");
  ok "chmod" (S.chmod p "/mail/cur" 0o700);
  for i = 2 to 50 do
    ignore (S.stat p (Printf.sprintf "/mail/cur/m%d" i))
  done;
  Utrace.disarm ();
  print_string (Utrace.histograms_to_string ());
  print_string (Utrace.causes_to_string ());
  row "ring: recorded %d, dropped %d (capacity %d)\n" (Utrace.recorded ())
    (Utrace.dropped ()) (Utrace.capacity ());
  row "dump_chrome: %d bytes of trace_event JSON\n"
    (String.length (Utrace.dump_chrome ()));
  Utrace.reset ()

(* ------------------------------------------------------------------ *)
(* Scale: warm-hit cost vs cached-tree size across DLHT resizes        *)
(* ------------------------------------------------------------------ *)

let scale_bench () =
  header
    "Scale - warm fastpath hit vs cached-tree size.  The DLHT starts at\n\
     256 buckets and doubles incrementally as the tree grows; flat ns/op\n\
     across sizes shows the auto-resize keeps chains short where a\n\
     fixed-size table would degrade with load factor.";
  let exps = if !quick then [ 14; 16 ] else [ 14; 16; 18; 20 ] in
  let samples = 256 in
  let run_size exp =
    let n = 1 lsl exp in
    let config =
      {
        Config.optimized with
        Config.dlht_buckets = 256;
        (* tiny on purpose: every size crosses resize boundaries *)
        max_dentries = 1 lsl 22;
        (* no LRU eviction even at 2^20 files *)
      }
    in
    let env = W.Env.ram config in
    let p = env.W.Env.proc in
    (* Fixed-width components: the probed path is the same byte length at
       every size, so ns/op differences are table effects, not hashing
       cost. *)
    let path i = Printf.sprintf "/scale/d%04x/f%05x" (i lsr 8) i in
    ok "root" (S.mkdir_p p "/scale");
    for d = 0 to (n - 1) lsr 8 do
      ok "dir" (S.mkdir_p p (Printf.sprintf "/scale/d%04x" d))
    done;
    for i = 0 to n - 1 do
      ok "file" (S.write_file p (path i) "x")
    done;
    (* Creation walks don't publish to the DLHT; a stat of every file does,
       so the table really holds [n] entries, not just the probed sample. *)
    for i = 0 to n - 1 do
      ignore (ok "warm" (S.stat p (path i)))
    done;
    let fp = Kernel.fastpath env.W.Env.kernel in
    let ctx = Proc.walk_ctx p in
    let paths = Array.init samples (fun s -> path (s * (n / samples))) in
    Array.iter (fun q -> ignore (ok "warm" (S.stat p q))) paths;
    let idx = ref 0 in
    let f () =
      let i = !idx in
      idx := (i + 1) land (samples - 1);
      ignore (Dcache_core.Fastpath.lookup_into fp ctx paths.(i) ~within:alloc_within)
    in
    f ();
    let words =
      Stats.minor_words_per_op ~iters:(if !quick then 20_000 else 100_000) f
    in
    let ns = latency_ns ~iters:(if !quick then 5_000 else 20_000) f in
    let dlht =
      match Dcache_core.Dlht.of_namespace_opt p.Proc.ns with
      | Some t -> t
      | None -> failwith "scale: no DLHT attached"
    in
    let occ = Dcache_core.Dlht.occupancy dlht in
    let module D = Dcache_core.Dlht in
    let mean_chain =
      float_of_int occ.D.occ_entries /. float_of_int (max 1 occ.D.occ_used)
    in
    (n, ns, words, occ.D.occ_buckets, occ.D.occ_longest, mean_chain, D.resizes dlht,
     D.population dlht)
  in
  let results = List.map run_size exps in
  row "%-10s %10s %10s %9s %7s %7s %8s %11s\n" "dentries" "ns/op" "words/op" "buckets"
    "maxchn" "meanchn" "resizes" "population";
  List.iter
    (fun (n, ns, words, buckets, longest, mean, resizes, population) ->
      row "%-10d %10.1f %10.2f %9d %7d %7.2f %8d %11d\n" n ns words buckets longest mean
        resizes population)
    results;
  (match (results, List.rev results) with
  | (n0, ns0, _, _, _, _, _, _) :: _, (n1, ns1, _, _, _, _, _, _) :: _ when n0 <> n1 ->
    row "ns/op at %d is %.2fx ns/op at %d (acceptance bound: 1.5x)\n" n1 (ns1 /. ns0) n0
  | _ -> ());
  (* Machine-readable evidence for CI / the paper repo. *)
  let entries =
    List.map
      (fun (n, ns, words, buckets, longest, mean, resizes, population) ->
        Printf.sprintf
          "    {\"dentries\": %d, \"ns_per_op\": %.2f, \"words_per_op\": %.3f, \
           \"buckets\": %d, \"longest_chain\": %d, \"mean_chain\": %.3f, \
           \"resizes\": %d, \"population\": %d}"
          n ns words buckets longest mean resizes population)
      results
  in
  let ratio =
    match (results, List.rev results) with
    | (_, ns0, _, _, _, _, _, _) :: _, (_, ns1, _, _, _, _, _, _) :: _ when ns0 > 0.0 ->
      ns1 /. ns0
    | _ -> 1.0
  in
  Bench_report.write ~experiment:"scale"
    [
      ("initial_buckets", "256");
      ("grow_load", string_of_int Config.optimized.Config.dlht_grow_load);
      ("samples_per_size", string_of_int samples);
      ("sizes", "[\n" ^ String.concat ",\n" entries ^ "\n  ]");
      ("ns_ratio_largest_over_smallest", Printf.sprintf "%.3f" ratio);
    ]

(* ------------------------------------------------------------------ *)
(* Deepmiss: cold misses on deep paths — prefix-resumed slowpath (§3.5) *)
(* ------------------------------------------------------------------ *)

(* Sweep chain depth 4 → 32 and compare the optimized kernel against the
   same kernel with [prefix_resume] ablated: on a cold DLHT miss with warm
   ancestors, the resumed slowpath should execute O(suffix) walk components
   (counter-verified against [walk_components]) and resolve in a fraction
   of the from-root time that grows with depth.  A cold-tree control (drop
   all caches before every lookup) shows the shortcut costs nothing when
   there is no ancestor to resume from, and a negative-fast-fail pass
   measures the no-walk ENOENT verdict against the ablated walk. *)

let deepmiss () =
  header
    "Deepmiss - cold miss on a deep path, ancestors warm.  The resumed\n\
     slowpath restarts from the longest cached ancestor and walks only\n\
     the uncached suffix; the ablation (prefix_resume=false) re-walks\n\
     every component from the root.";
  let depths = [ 4; 8; 16; 24; 32 ] in
  let leaves = if !quick then 256 else 1024 in
  let rounds = if !quick then 3 else 5 in
  let cold_iters = if !quick then 24 else 64 in
  let chain_path depth =
    "/" ^ String.concat "/" (List.init depth (Printf.sprintf "c%02d"))
  in
  let run_config ~resume depth =
    let config = { Config.optimized with Config.prefix_resume = resume } in
    let env = W.Env.ram config in
    let p = env.W.Env.proc in
    let deep = chain_path depth in
    ok "chain" (S.mkdir_p p deep);
    let leaf i = Printf.sprintf "%s/f%04d" deep i in
    for i = 0 to leaves - 1 do
      ok "leaf" (S.write_file p (leaf i) "x")
    done;
    (* Warm-ancestor pass: purge, re-warm only the directory chain, then
       stat every leaf exactly once — each is a cold DLHT miss whose every
       ancestor is cached.  [walk_components] counts the slowpath work. *)
    let pass () =
      W.Env.drop_caches env;
      ignore (ok "warm chain" (S.stat p deep));
      let comp0 = counter env "walk_components" in
      let t0 = Dcache_util.Clock.now_ns () in
      for i = 0 to leaves - 1 do
        ignore (ok "miss" (S.stat p (leaf i)))
      done;
      let t1 = Dcache_util.Clock.now_ns () in
      ( Int64.to_float (Int64.sub t1 t0) /. float_of_int leaves,
        float_of_int (counter env "walk_components" - comp0) /. float_of_int leaves )
    in
    ignore (pass ());
    let samples = Array.init rounds (fun _ -> pass ()) in
    let miss_ns = Stats.median (Array.map fst samples) in
    let comps = Stats.median (Array.map snd samples) in
    let resumes = counter env "fastpath_prefix_resume" in
    (* Cold-tree control: nothing cached at all, so there is no ancestor to
       resume from and both kernels pay the same from-root walk. *)
    let cold_acc = ref 0L in
    for i = 0 to cold_iters - 1 do
      W.Env.drop_caches env;
      let t0 = Dcache_util.Clock.now_ns () in
      ignore (ok "cold" (S.stat p (leaf (i land (leaves - 1)))));
      let t1 = Dcache_util.Clock.now_ns () in
      cold_acc := Int64.add !cold_acc (Int64.sub t1 t0)
    done;
    let cold_ns = Int64.to_float !cold_acc /. float_of_int cold_iters in
    (* Negative fast-fail: the deep dir becomes DIR_COMPLETE via readdir;
       probing fresh absent names then fails from the cached prefix alone
       (no walk, no write lock) where the ablation walks from the root. *)
    W.Env.drop_caches env;
    ignore (ok "warm chain" (S.stat p deep));
    ignore (ok "readdir" (S.readdir_path p deep));
    let neg0 = counter env "fastpath_prefix_negfail" in
    let t0 = Dcache_util.Clock.now_ns () in
    for i = 0 to leaves - 1 do
      match S.stat p (Printf.sprintf "%s/none%04d" deep i) with
      | Error Dcache_types.Errno.ENOENT -> ()
      | Ok _ -> failwith "deepmiss: absent name resolved"
      | Error e -> failwith ("deepmiss: " ^ Dcache_types.Errno.to_string e)
    done;
    let t1 = Dcache_util.Clock.now_ns () in
    let neg_ns = Int64.to_float (Int64.sub t1 t0) /. float_of_int leaves in
    let negfails = counter env "fastpath_prefix_negfail" - neg0 in
    (* Warm-hit figures on a leaf of this chain: the snapshot recording
       rides on every probe, so this guards the scale bench's warm-hit
       ns/op and words/op (BENCH_scale.json) against regression. *)
    for i = 0 to leaves - 1 do
      ignore (ok "rewarm" (S.stat p (leaf i)))
    done;
    let fp = Kernel.fastpath env.W.Env.kernel in
    let ctx = Proc.walk_ctx p in
    let warm_path = leaf 0 in
    let f () = ignore (Dcache_core.Fastpath.lookup_into fp ctx warm_path ~within:alloc_within) in
    f ();
    let warm_words = Stats.minor_words_per_op ~iters:(if !quick then 20_000 else 100_000) f in
    let warm_ns = latency_ns ~iters:(if !quick then 5_000 else 20_000) f in
    (miss_ns, comps, resumes, cold_ns, neg_ns, negfails, warm_ns, warm_words)
  in
  row "%-6s %12s %12s %9s %12s %12s %10s %9s\n" "depth" "miss ns/op" "comps/op"
    "resumes" "cold ns/op" "negfail ns" "warm ns" "warm wds";
  let results =
    List.map
      (fun depth ->
        let (r_ns, r_comps, r_resumes, r_cold, r_neg, r_negfails, r_wns, r_wwords) =
          run_config ~resume:true depth
        in
        let (f_ns, f_comps, _, f_cold, f_neg, _, f_wns, f_wwords) =
          run_config ~resume:false depth
        in
        row "%-6d %12.1f %12.2f %9d %12.1f %12.1f %10.1f %9.2f  resumed\n" depth r_ns
          r_comps r_resumes r_cold r_neg r_wns r_wwords;
        row "%-6s %12.1f %12.2f %9s %12.1f %12.1f %10.1f %9.2f  from-root\n" "" f_ns
          f_comps "-" f_cold f_neg f_wns f_wwords;
        (depth, (r_ns, r_comps, r_resumes, r_cold, r_neg, r_negfails, r_wns, r_wwords),
         (f_ns, f_comps, f_cold, f_neg, f_wns, f_wwords)))
      depths
  in
  (* Acceptance: at depth >= 16 the resumed miss executes slowpath work
     proportional to the uncached suffix (~1 component, against depth+1
     from the root) and resolves in at most half the from-root time. *)
  List.iter
    (fun (depth, (r_ns, r_comps, r_resumes, _, _, r_negfails, _, _), (f_ns, f_comps, _, _, _, _)) ->
      if depth >= 16 then begin
        row
          "depth %d: resumed/from-root time %.2fx (bound 0.50), components %.2f vs %.2f\n"
          depth (r_ns /. f_ns) r_comps f_comps;
        if r_ns > 0.5 *. f_ns then
          row "  WARNING: resumed miss exceeded 50%% of the from-root time\n";
        if r_comps > 2.0 then
          row "  WARNING: resumed miss walked %.2f components (expected ~1)\n" r_comps;
        if r_resumes = 0 then row "  WARNING: no prefix resumes recorded\n";
        if r_negfails = 0 then row "  WARNING: no negative fast-fails recorded\n"
      end)
    results;
  let figures =
    let entries =
      List.map
        (fun (depth, (r_ns, r_comps, r_resumes, r_cold, r_neg, r_negfails, r_wns, r_wwords),
              (f_ns, f_comps, f_cold, f_neg, f_wns, f_wwords)) ->
          Printf.sprintf
            "    {\"depth\": %d,\n\
            \     \"resumed\": {\"miss_ns\": %.2f, \"components_per_op\": %.3f, \
             \"resumes\": %d, \"cold_tree_ns\": %.2f, \"negfail_ns\": %.2f, \
             \"negfails\": %d, \"warm_hit_ns\": %.2f, \"warm_hit_words\": %.3f},\n\
            \     \"from_root\": {\"miss_ns\": %.2f, \"components_per_op\": %.3f, \
             \"cold_tree_ns\": %.2f, \"negfail_ns\": %.2f, \"warm_hit_ns\": %.2f, \
             \"warm_hit_words\": %.3f},\n\
            \     \"miss_time_ratio\": %.3f}"
            depth r_ns r_comps r_resumes r_cold r_neg r_negfails r_wns r_wwords f_ns
            f_comps f_cold f_neg f_wns f_wwords
            (if f_ns > 0.0 then r_ns /. f_ns else 1.0))
        results
    in
    [
      ("leaves", string_of_int leaves);
      ("depths", "[\n" ^ String.concat ",\n" entries ^ "\n  ]");
    ]
  in
  Bench_report.write ~experiment:"deepmiss" figures

(* ------------------------------------------------------------------ *)
(* Churn: multi-writer mutation throughput — sharded path (§3.6)       *)
(* ------------------------------------------------------------------ *)

(* N writer domains churn create → cross-directory rename → unlink cycles,
   each through its own directory pair so their stripes never collide,
   while two reader domains measure warm-hit ns/op and words/op on an
   untouched directory mid-churn.  The same run repeats with
   [dcache_stripes = 0] — every mutation back through the global write
   lock — to measure what sharding buys: per-op, a sharded section is a
   lockless parent probe plus a stripe bracket instead of a write-locked
   walk, and across writers the stripe table removes the global-lock
   convoy. *)

let churn () =
  header
    "Churn - multi-writer create/rename/unlink throughput.  sharded runs\n\
     use the stripe table (dcache_stripes=128); global runs force every\n\
     mutation through the single write lock (dcache_stripes=0).  Readers\n\
     measure warm lockless hits on an unrelated directory mid-churn.";
  let names_per_writer = 16 in
  let ops_per_writer = if !quick then 10_000 else 30_000 in
  let reader_iters = if !quick then 10_000 else 50_000 in
  let cores = Domain.recommended_domain_count () in
  row "host cores: %d%s\n" cores
    (if cores < 8 then
       "  (writer domains timeshare: the ratio below measures lock\n\
       \   discipline and reader interference, not parallel scaling)"
     else "");
  let run ~stripes ~writers =
    let config = { Config.optimized with Config.dcache_stripes = stripes } in
    let env = W.Env.ram config in
    let p = env.W.Env.proc in
    ok "stable" (S.mkdir_p p "/stable");
    let stable = Array.init 8 (fun i -> Printf.sprintf "/stable/f%d" i) in
    Array.iter (fun f -> ok "stable file" (S.write_file p f "S")) stable;
    Array.iter (fun f -> ignore (ok "warm" (S.stat p f))) stable;
    let name w k phase =
      Printf.sprintf "/churn/%c%d/n%d" (if phase = 2 then 'b' else 'a') w k
    in
    for w = 0 to writers - 1 do
      ok "dirs" (S.mkdir_p p (Printf.sprintf "/churn/a%d" w));
      ok "dirs" (S.mkdir_p p (Printf.sprintf "/churn/b%d" w));
      (* Warm-up lap: cached negatives at both cycle endpoints keep every
         steady-state op on the sharded path. *)
      for k = 0 to names_per_writer - 1 do
        ok "warm create" (S.write_file p (name w k 0) "x");
        ok "warm rename" (S.rename p (name w k 1) (name w k 2));
        ok "warm unlink" (S.unlink p (name w k 2))
      done
    done;
    let fp = Kernel.fastpath env.W.Env.kernel in
    let reader_results = Array.make 2 (0.0, 0.0) in
    let stop = Atomic.make false in
    (* Readers run for the whole churn window — the mixed-load point of the
       sharded design: their warm hits never take a lock, so in sharded
       mode they cost the writers nothing, where in global mode every
       mutation invalidates the lockless probe and the resulting read-lock
       fallbacks contend with the write lock.  ns/op and words/op are
       measured over each reader's first [reader_iters] probes. *)
    let readers =
      List.init 2 (fun r ->
          Domain.spawn (fun () ->
              let rp = Proc.fork p in
              let ctx = Proc.walk_ctx rp in
              let i = ref 0 in
              let f () =
                ignore
                  (Dcache_core.Fastpath.lookup_into fp ctx stable.(!i land 7)
                     ~within:alloc_within);
                incr i
              in
              for _ = 1 to 64 do
                f ()
              done;
              let words = Stats.minor_words_per_op ~iters:reader_iters f in
              let t0 = Dcache_util.Clock.now_ns () in
              for _ = 1 to reader_iters do
                f ()
              done;
              let t1 = Dcache_util.Clock.now_ns () in
              reader_results.(r) <-
                (Int64.to_float (Int64.sub t1 t0) /. float_of_int reader_iters, words);
              while not (Atomic.get stop) do
                f ()
              done))
    in
    (* The clock brackets spawn-to-join of the writers (readers are already
       live), so ops/s is honest even when domains timeshare few cores. *)
    let t0 = Dcache_util.Clock.now_ns () in
    let writer_domains =
      List.init writers (fun w ->
          Domain.spawn (fun () ->
              let wp = Proc.fork p in
              let phase = Array.make names_per_writer 0 in
              for i = 0 to ops_per_writer - 1 do
                let k = i land (names_per_writer - 1) in
                (match phase.(k) with
                | 0 -> (
                  (* touch: the create is the measured mutation *)
                  match S.openf wp (name w k 0) [ Proc.O_CREAT; Proc.O_WRONLY ] with
                  | Ok fd -> ignore (S.close wp fd)
                  | Error _ -> ())
                | 1 -> ignore (S.rename wp (name w k 1) (name w k 2))
                | _ -> ignore (S.unlink wp (name w k 2)));
                phase.(k) <- (phase.(k) + 1) mod 3
              done))
    in
    List.iter Domain.join writer_domains;
    let t1 = Dcache_util.Clock.now_ns () in
    Atomic.set stop true;
    List.iter Domain.join readers;
    let secs = Int64.to_float (Int64.sub t1 t0) /. 1e9 in
    let ops_s = float_of_int (writers * ops_per_writer) /. secs in
    let reader_ns = (fst reader_results.(0) +. fst reader_results.(1)) /. 2.0 in
    let reader_words = (snd reader_results.(0) +. snd reader_results.(1)) /. 2.0 in
    let sharded_ops =
      counter env "sharded_create" + counter env "sharded_rename"
      + counter env "sharded_unlink"
    in
    (ops_s, reader_ns, reader_words, sharded_ops)
  in
  let writer_counts = [ 1; 2; 4; 8 ] in
  row "%-8s %8s %14s %12s %12s %13s\n" "mode" "writers" "churn ops/s" "reader ns"
    "reader wds" "sharded ops";
  let measure ~stripes label =
    List.map
      (fun writers ->
        let ops_s, rd_ns, rd_words, sharded = run ~stripes ~writers in
        row "%-8s %8d %14.0f %12.1f %12.2f %13d\n" label writers ops_s rd_ns rd_words
          sharded;
        (writers, ops_s, rd_ns, rd_words, sharded))
      writer_counts
  in
  let sharded = measure ~stripes:Config.optimized.Config.dcache_stripes "sharded" in
  let global = measure ~stripes:0 "global" in
  let find n l = List.find (fun (w, _, _, _, _) -> w = n) l in
  let (_, s8, _, _, _) = find 8 sharded and (_, g8, _, _, _) = find 8 global in
  let ratio8 = if g8 > 0.0 then s8 /. g8 else 0.0 in
  row "8 writers: sharded/global throughput %.2fx (acceptance bound: 2.5x)\n" ratio8;
  if ratio8 < 2.5 then row "  WARNING: sharded churn below the 2.5x bound\n";
  let figures =
    let entries label l =
      List.map
        (fun (w, ops_s, rd_ns, rd_words, sharded_ops) ->
          Printf.sprintf
            "    {\"mode\": \"%s\", \"writers\": %d, \"churn_ops_per_s\": %.0f, \
             \"reader_warm_ns\": %.2f, \"reader_warm_words\": %.3f, \
             \"sharded_ops\": %d}"
            label w ops_s rd_ns rd_words sharded_ops)
        l
    in
    [
      ("stripes", string_of_int Config.optimized.Config.dcache_stripes);
      ("ops_per_writer", string_of_int ops_per_writer);
      ( "runs",
        "[\n"
        ^ String.concat ",\n" (entries "sharded" sharded @ entries "global" global)
        ^ "\n  ]" );
      ("throughput_ratio_8_writers", Printf.sprintf "%.3f" ratio8);
    ]
    @
    if cores = 1 then
      [
        ( "host_caveat",
          "\"single-core host: writer domains timeshare, so the 8-writer \
           ratio measures lock discipline (convoy avoidance), not parallel \
           scaling; the >= 2.5x bound presumes a multicore host\"" );
      ]
    else []
  in
  Bench_report.write ~experiment:"churn" figures

(* ------------------------------------------------------------------ *)
(* Coherence: N stateful clients under a churn writer — leases (§3.7)  *)
(* ------------------------------------------------------------------ *)

(* Three phases.  (1) Warm live-lease hits on stable files: the lease gate
   sits on the lockless commit path, so ns/op and words/op must be within
   noise of the local-fs scale bench — and the RPC count stays zero.
   (2) A churn-mix window: a writer client rewrites/replaces files while
   readers stat a hot/churn mix; p50 absorbs the live-lease hits, p99 the
   lease fallbacks, break-driven evictions and revalidation round trips.
   (3) A fault-storm staleness audit at a short ttl: drops, partitions and
   crash/restarts, every successful reader stat checked against the
   backing store's ground truth — zero positives older than ttl + skew. *)

let coherence () =
  header
    "Coherence - stateful clients under a churn writer (leases, §3.7).\n\
     Live-lease warm hits must stay lockless/allocation-free; the\n\
     staleness audit must find zero positives older than ttl + skew.";
  let module Netfs = Dcache_fs.Netfs in
  let module Fault = Dcache_util.Fault in
  let module Vclock = Dcache_util.Vclock in
  let module Attr = Dcache_types.Attr in
  let kcounter kernel key =
    try List.assoc key (Kernel.stats_snapshot kernel) with Not_found -> 0
  in
  let cores = Domain.recommended_domain_count () in
  let n_clients = 4 in
  let churn_files = 32 in
  let warm_iters = if !quick then 20_000 else 100_000 in
  let warm_samples_n = if !quick then 20_000 else 50_000 in
  let churn_rounds = if !quick then 300 else 1_500 in
  row "host cores: %d, clients: %d\n" cores n_clients;

  (* --- fault-free server with the canonical lease figures --- *)
  let clock = Vclock.create () in
  let backing = Dcache_fs.Ramfs.create () in
  let server = Netfs.server ~rpc_latency_ns:120_000 ~clock backing in
  let mk_client () =
    let c, fs = Netfs.connect_fs server in
    let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
    (c, kernel, Proc.spawn kernel)
  in
  let readers = Array.init n_clients (fun _ -> mk_client ()) in
  let _, _, wp = mk_client () in
  ok "tree" (S.mkdir_p wp "/export/hot");
  ok "tree" (S.mkdir_p wp "/export/churn");
  let hot = Array.init 8 (fun i -> Printf.sprintf "/export/hot/s%d" i) in
  Array.iter (fun f -> ok "hot file" (S.write_file wp f "S")) hot;
  let churn_path i = Printf.sprintf "/export/churn/c%d" (i mod churn_files) in
  for i = 0 to churn_files - 1 do
    ok "churn file" (S.write_file wp (churn_path i) "v0")
  done;
  (* ino -> path map for precise per-client break deliveries, refreshed
     from the backing store after each writer op. *)
  let ino_path = Hashtbl.create 64 in
  let churn_dir_ino =
    let export =
      ok "lookup export"
        (backing.Dcache_fs.Fs_intf.lookup backing.Dcache_fs.Fs_intf.root_ino "export")
    in
    (ok "lookup churn" (backing.Dcache_fs.Fs_intf.lookup export.Attr.ino "churn")).Attr.ino
  in
  let refresh_ino_map () =
    Hashtbl.reset ino_path;
    for i = 0 to churn_files - 1 do
      match backing.Dcache_fs.Fs_intf.lookup churn_dir_ino (Printf.sprintf "c%d" i) with
      | Ok a -> Hashtbl.replace ino_path a.Attr.ino (churn_path i)
      | Error _ -> ()
    done
  in
  refresh_ino_map ();
  Array.iter
    (fun (c, _, p) ->
      Netfs.set_invalidate c (fun ino ->
          match Hashtbl.find_opt ino_path ino with
          | Some path -> ignore (S.invalidate_path p path)
          | None -> ());
      Array.iter (fun f -> ignore (ok "warm hot" (S.stat p f))) hot;
      for i = 0 to churn_files - 1 do
        ignore (ok "warm churn" (S.stat p (churn_path i)))
      done)
    readers;

  (* --- phase 1: warm live-lease hits --- *)
  let _, k0, p0 = readers.(0) in
  let fp = Kernel.fastpath k0 in
  let ctx = Proc.walk_ctx p0 in
  let i = ref 0 in
  let probe () =
    ignore
      (Dcache_core.Fastpath.lookup_into fp ctx hot.(!i land 7) ~within:alloc_within);
    incr i
  in
  probe ();
  Netfs.reset_rpc_count server;
  let warm_words = Stats.minor_words_per_op ~iters:warm_iters probe in
  let warm_mean = latency_ns ~iters:warm_iters probe in
  let samples = Array.make warm_samples_n 0.0 in
  for s = 0 to warm_samples_n - 1 do
    let t0 = Dcache_util.Clock.now_ns () in
    probe ();
    let t1 = Dcache_util.Clock.now_ns () in
    samples.(s) <- Int64.to_float (Int64.sub t1 t0)
  done;
  let warm_p50 = Stats.percentile samples 50.0 in
  let warm_p99 = Stats.percentile samples 99.0 in
  let warm_rpcs = Netfs.rpc_count server in
  (* Same-run control: the identical probe over a local ramfs (no lease
     gate).  The gate's cost is the ratio against this, free of cross-run
     machine noise. *)
  let control_mean =
    let kernel = Kernel.create ~config:Config.optimized ~root_fs:(Dcache_fs.Ramfs.create ()) () in
    let p = Proc.spawn kernel in
    ok "control tree" (S.mkdir_p p "/export/hot");
    Array.iter (fun f -> ok "control file" (S.write_file p f "S")) hot;
    Array.iter (fun f -> ignore (ok "control warm" (S.stat p f))) hot;
    let fp = Kernel.fastpath kernel in
    let ctx = Proc.walk_ctx p in
    let j = ref 0 in
    latency_ns ~iters:warm_iters (fun () ->
        ignore
          (Dcache_core.Fastpath.lookup_into fp ctx hot.(!j land 7) ~within:alloc_within);
        incr j)
  in
  row
    "warm live-lease hit: mean %.1f ns (local control %.1f ns), p50 %.0f ns, p99 %.0f \
     ns, %.2f words/op, %d RPCs\n"
    warm_mean control_mean warm_p50 warm_p99 warm_words warm_rpcs;
  if warm_words > 0.0 then row "  WARNING: live-lease warm hit allocated\n";
  if warm_rpcs > 0 then row "  WARNING: live-lease warm hit generated RPCs\n";

  (* --- phase 2: churn mix --- *)
  let fallbacks0 =
    Array.fold_left (fun acc (_, k, _) -> acc + kcounter k "fastpath_lease_fallback") 0 readers
  in
  let cb0 =
    Array.fold_left (fun acc (_, k, _) -> acc + kcounter k "sharded_cb_invalidate") 0 readers
  in
  let mix = Array.make (churn_rounds * n_clients * 2) 0.0 in
  let mi = ref 0 in
  let wseed = ref 12345 in
  let wnext bound =
    wseed := ((!wseed * 1103515245) + 12345) land 0x3FFFFFFF;
    !wseed mod bound
  in
  for round = 0 to churn_rounds - 1 do
    (* the churn writer: rewrite in place, or replace (unlink + recreate) *)
    let f = churn_path (wnext churn_files) in
    (match wnext 3 with
    | 0 -> ok "rewrite" (S.write_file wp f (String.make (1 + wnext 64) 'w'))
    | 1 ->
      ignore (S.unlink wp f);
      ok "recreate" (S.write_file wp f "r")
    | _ -> ok "touch" (S.write_file wp f "t"));
    refresh_ino_map ();
    Array.iter
      (fun (_, _, p) ->
        let time_stat path =
          let t0 = Dcache_util.Clock.now_ns () in
          ignore (S.stat p path);
          let t1 = Dcache_util.Clock.now_ns () in
          mix.(!mi) <- Int64.to_float (Int64.sub t1 t0);
          incr mi
        in
        time_stat hot.(round land 7);
        time_stat (churn_path (round + wnext churn_files)))
      readers
  done;
  let mix_p50 = Stats.percentile mix 50.0 in
  let mix_p99 = Stats.percentile mix 99.0 in
  let fallbacks =
    Array.fold_left (fun acc (_, k, _) -> acc + kcounter k "fastpath_lease_fallback") 0 readers
    - fallbacks0
  in
  let cb_invalidates =
    Array.fold_left (fun acc (_, k, _) -> acc + kcounter k "sharded_cb_invalidate") 0 readers
    - cb0
  in
  let breaks =
    List.fold_left
      (fun acc c -> acc + (Netfs.lease_stats server c).Netfs.ls_breaks)
      0 (Netfs.clients server)
  in
  row "churn mix (%d rounds x %d clients): p50 %.0f ns, p99 %.0f ns\n" churn_rounds
    n_clients mix_p50 mix_p99;
  row "  lease fallbacks %d, breaks delivered %d, sharded cb evictions %d\n" fallbacks
    breaks cb_invalidates;

  (* --- chrome-trace capture (§3.8): one traced break window ---

     The writer rewrites a hot file with the profiler armed.  Hot inos are
     not in the readers' invalidate map, so their dentries stay warm and
     the re-stat is rejected by the lease gate itself — the gate miss
     consumes the recorded breaker span and stamps the cross-client link,
     which [dump_chrome] renders as a connected flow.  The dump is the CI
     artifact. *)
  let module Uprof = Dcache_util.Profiler in
  Utrace.reset ();
  Uprof.reset ();
  Utrace.armed := true;
  Uprof.arm ();
  ok "traced break write" (S.write_file wp hot.(0) "traced");
  Array.iter (fun (_, _, p) -> ignore (S.stat p hot.(0))) readers;
  Utrace.armed := false;
  Uprof.disarm ();
  let links = ref 0 in
  Utrace.iter_events (fun _ _ ev _ _ -> if ev = Utrace.ev_span_link then incr links);
  let dump = Utrace.dump_chrome () in
  let oc = open_out "BENCH_coherence_trace.json" in
  output_string oc dump;
  close_out oc;
  row "wrote BENCH_coherence_trace.json (%d bytes, %d events, %d cross-client flows)\n"
    (String.length dump) (min (Utrace.recorded ()) (Utrace.capacity ())) !links;
  if !links = 0 then row "  WARNING: no cross-client span links captured\n";
  Utrace.reset ();
  Uprof.reset ();

  (* --- phase 3: fault-storm staleness audit (short ttl) --- *)
  let ttl = 2_000_000 and skew = 200_000 in
  let audit_steps = if !quick then 600 else 3_000 in
  let aclock = Vclock.create () in
  let abacking = Dcache_fs.Ramfs.create () in
  let inj = Fault.create ~seed:1 () in
  let aserver =
    Netfs.server ~rpc_latency_ns:1000 ~faults:inj ~lease_ttl_ns:ttl
      ~grace_ns:(ttl + skew) ~skew_ns:skew ~clock:aclock abacking
  in
  let _, rfs = Netfs.connect_fs aserver in
  let rk = Kernel.create ~config:Config.optimized ~root_fs:rfs () in
  let rp = Proc.spawn rk in
  let _, wfs = Netfs.connect_fs aserver in
  let wk = Kernel.create ~config:Config.optimized ~root_fs:wfs () in
  let awp = Proc.spawn wk in
  ok "audit tree" (S.mkdir_p awp "/export");
  let apaths = Array.init 6 (fun i -> Printf.sprintf "/export/f%d" i) in
  let adir =
    (ok "audit dir"
       (abacking.Dcache_fs.Fs_intf.lookup abacking.Dcache_fs.Fs_intf.root_ino "export"))
      .Attr.ino
  in
  let truth = Array.map (fun _ -> (false, -1, -1)) apaths in
  let t_change = Array.map (fun _ -> 0L) apaths in
  let probe_truth () =
    Array.iteri
      (fun i _ ->
        let now_state =
          match abacking.Dcache_fs.Fs_intf.lookup adir (Printf.sprintf "f%d" i) with
          | Ok a -> (true, a.Attr.ino, a.Attr.size)
          | Error _ -> (false, -1, -1)
        in
        if now_state <> truth.(i) then begin
          truth.(i) <- now_state;
          t_change.(i) <- Vclock.elapsed_ns aclock
        end)
      apaths
  in
  probe_truth ();
  Fault.arm (Fault.site inj "netfs.drop") (Fault.Probability 0.15);
  Fault.arm (Fault.site inj "netfs.partition") (Fault.Probability 0.1);
  let bound = Int64.of_int (ttl + skew) in
  let audited = ref 0 and violations = ref 0 in
  let aprng = Prng.create 99 in
  for step = 1 to audit_steps do
    if step mod 100 = 0 then Fault.arm (Fault.site inj "netfs.crash") (Fault.Nth 1);
    let wi = Prng.int aprng (Array.length apaths) in
    (match Prng.int aprng 4 with
    | 0 -> ignore (S.write_file awp apaths.(wi) (String.make (1 + Prng.int aprng 32) 'w'))
    | 1 -> ignore (S.unlink awp apaths.(wi))
    | 2 -> ignore (S.write_file awp apaths.(wi) "fresh")
    | _ -> ());
    probe_truth ();
    Vclock.charge aclock (Int64.of_int (Prng.int aprng 400_000));
    let ri = Prng.int aprng (Array.length apaths) in
    let t_before = Vclock.elapsed_ns aclock in
    match S.stat rp apaths.(ri) with
    | Ok attr ->
      incr audited;
      let present, tino, tsize = truth.(ri) in
      let age = Int64.sub t_before t_change.(ri) in
      if
        Int64.compare age bound > 0
        && ((not present) || tino <> attr.Attr.ino || tsize <> attr.Attr.size)
      then incr violations
    | Error _ -> ()
  done;
  let ast = Netfs.rpc_stats aserver in
  row
    "staleness audit: %d steps, %d positives audited, %d violations (bound %Ld ns)\n"
    audit_steps !audited !violations bound;
  row "  storm: %d crashes, %d partitions, %d drops, %d giveups\n" ast.Netfs.rs_crashes
    ast.Netfs.rs_partitions ast.Netfs.rs_drops ast.Netfs.rs_giveups;
  if !violations > 0 then row "  WARNING: staleness bound violated\n";

  let figures =
    [
      ("clients", string_of_int n_clients);
      ("rpc_latency_ns", "120000");
      ("lease_ttl_ns", string_of_int (Netfs.lease_ttl_ns server));
      ("lease_skew_ns", string_of_int (Netfs.lease_skew_ns server));
      ("grace_ns", string_of_int (Netfs.grace_ns server));
      ( "warm_live_lease",
        Printf.sprintf
          "{\"ns_mean\": %.2f, \"local_control_ns_mean\": %.2f, \"ns_p50\": %.1f, \
           \"ns_p99\": %.1f, \"words_per_op\": %.3f, \"rpcs\": %d}"
          warm_mean control_mean warm_p50 warm_p99 warm_words warm_rpcs );
      ( "churn_mix",
        Printf.sprintf
          "{\"rounds\": %d, \"ns_p50\": %.1f, \"ns_p99\": %.1f, \"lease_fallbacks\": %d, \
           \"breaks_delivered\": %d, \"sharded_cb_invalidates\": %d}"
          churn_rounds mix_p50 mix_p99 fallbacks breaks cb_invalidates );
      ( "staleness_audit",
        Printf.sprintf
          "{\"seed\": 1, \"steps\": %d, \"audited_positives\": %d, \"violations\": %d, \
           \"bound_ns\": %Ld, \"crashes\": %d, \"partitions\": %d, \"drops\": %d, \
           \"giveups\": %d}"
          audit_steps !audited !violations bound ast.Netfs.rs_crashes
          ast.Netfs.rs_partitions ast.Netfs.rs_drops ast.Netfs.rs_giveups );
    ]
  in
  Bench_report.write ~experiment:"coherence" figures

(* ------------------------------------------------------------------ *)
(* Profile: §3.8 profiler overhead — armed vs disarmed warm hits       *)
(* ------------------------------------------------------------------ *)

(* Two measurements, each disarmed then armed (ring + profiler; timing
   stays off — clock reads are a separate, costed switch):

   - the raw warm fastpath probe, which pays the sketch update and the
     ring stamp when armed, and must keep its zero-allocation discipline;
   - the full stat syscall, which additionally mints a span per entry.

   The acceptance bound: armed costs within 10% of disarmed. *)

let profile () =
  header
    "Profile - request-scoped spans + per-directory sketch (§3.8).\n\
     Armed (ring + profiler, no timing) vs disarmed; the armed warm hit\n\
     must stay allocation-free and within 10% of the disarmed cost.";
  let module Uprof = Dcache_util.Profiler in
  let iters = if !quick then 50_000 else 200_000 in
  let words_iters = if !quick then 20_000 else 100_000 in
  let env = W.Env.ram Config.optimized in
  let p = env.W.Env.proc in
  let n_dirs = 8 in
  (* Representative depth (8 components, like the lmbench-style warm probe)
     and grouped by directory: consecutive probes stay in one directory for
     a few operations, the skew every real lookup trace shows (and what the
     sketch's last-slot memo is built for). *)
  let paths =
    Array.init
      (n_dirs * 4)
      (fun i -> Printf.sprintf "/prof/a/b/c/d/e/d%d/f%d" (i / 4) (i mod 4))
  in
  for d = 0 to n_dirs - 1 do
    ok "dir" (S.mkdir_p p (Printf.sprintf "/prof/a/b/c/d/e/d%d" d))
  done;
  Array.iter (fun f -> ok "file" (S.write_file p f "x")) paths;
  Array.iter (fun f -> ignore (ok "warm" (S.stat p f))) paths;
  let fp = Kernel.fastpath env.W.Env.kernel in
  let ctx = Proc.walk_ctx env.W.Env.proc in
  let i = ref 0 in
  let probe () =
    ignore
      (Dcache_core.Fastpath.lookup_into fp ctx paths.(!i land 31) ~within:alloc_within);
    incr i
  in
  let j = ref 0 in
  let syscall () =
    ignore (S.stat p paths.(!j land 31));
    incr j
  in
  Utrace.reset ();
  Uprof.reset ();
  Utrace.disarm ();
  probe ();
  syscall ();
  (* The host is noisy enough that a disarmed block followed by an armed
     block measures clock drift, not overhead.  Instead: many back-to-back
     disarmed/armed pairs, median of the per-pair ratios — drift hits both
     halves of a pair equally and cancels. *)
  let rounds = 5 * repeats () in
  let time f n =
    f ();
    let t0 = Dcache_util.Clock.now_ns () in
    for _ = 1 to n do
      f ()
    done;
    let t1 = Dcache_util.Clock.now_ns () in
    Int64.to_float (Int64.sub t1 t0) /. float_of_int n
  in
  let paired f =
    let dis = Array.make rounds 0.0 and arm = Array.make rounds 0.0 in
    let ratio = Array.make rounds 0.0 in
    let half armed_half =
      Utrace.armed := armed_half;
      if armed_half then Uprof.arm () else Uprof.disarm ();
      time f iters
    in
    for r = 0 to rounds - 1 do
      (* Alternate which half runs first: clock-frequency ramps within a
         pair would otherwise always tax the same side. *)
      if r land 1 = 0 then begin
        dis.(r) <- half false;
        arm.(r) <- half true
      end
      else begin
        arm.(r) <- half true;
        dis.(r) <- half false
      end;
      ratio.(r) <- (if dis.(r) > 0.0 then arm.(r) /. dis.(r) else 1.0)
    done;
    Utrace.armed := false;
    Uprof.disarm ();
    (Stats.median dis, Stats.median arm, (Stats.median ratio -. 1.0) *. 100.0)
  in
  let probe_dis_ns, probe_arm_ns, probe_pct = paired probe in
  let stat_dis_ns, stat_arm_ns, stat_pct = paired syscall in
  (* Raw per-hook costs, armed: what one stamp / one sketch update / one
     span mint actually spend. *)
  Utrace.armed := true;
  Uprof.arm ();
  let raw_stamp = latency_ns ~iters (fun () -> Utrace.stamp Utrace.ev_fast_hit 7) in
  let raw_record = latency_ns ~iters (fun () -> Uprof.hh_record 5 "d" Uprof.m_hit) in
  let raw_mint = latency_ns ~iters (fun () -> ignore (Uprof.span_enter ())) in
  Utrace.armed := false;
  Uprof.disarm ();
  row "raw armed costs: stamp %.1f ns, hh_record %.1f ns, span_enter %.1f ns\n"
    raw_stamp raw_record raw_mint;
  let probe_dis_words = Stats.minor_words_per_op ~iters:words_iters probe in
  Utrace.armed := true;
  Uprof.arm ();
  let probe_arm_words = Stats.minor_words_per_op ~iters:words_iters probe in
  Utrace.armed := false;
  Uprof.disarm ();
  row "%-34s %9.1f ns disarmed %9.1f ns armed %+7.1f%%\n" "warm fastpath probe" probe_dis_ns
    probe_arm_ns probe_pct;
  row "%-34s %9.2f w  disarmed %9.2f w  armed\n" "  words/op" probe_dis_words
    probe_arm_words;
  row "%-34s %9.1f ns disarmed %9.1f ns armed %+7.1f%%\n" "stat syscall (span minted)"
    stat_dis_ns stat_arm_ns stat_pct;
  if probe_arm_words > 0.0 then row "  WARNING: armed warm probe allocated\n";
  if probe_pct > 10.0 || stat_pct > 10.0 then
    row "  WARNING: armed overhead above the 10%% bound\n";
  let slots = Uprof.hot () in
  subheader "per-directory sketch after the armed window";
  print_string (Uprof.hot_to_string ());
  let top_json =
    slots
    |> List.filteri (fun k _ -> k < n_dirs)
    |> List.map (fun s ->
           Printf.sprintf
             "    {\"dir\": %d, \"label\": %S, \"total\": %d, \"err\": %d, \"hit\": %d}"
             s.Uprof.h_key s.Uprof.h_label s.Uprof.h_total s.Uprof.h_err
             s.Uprof.h_metrics.(Uprof.m_hit))
    |> String.concat ",\n"
  in
  let figures =
    [
      ("iters", string_of_int iters);
      ("overhead_bound_pct", "10.0");
      ( "warm_probe",
        Printf.sprintf
          "{\"disarmed_ns\": %.2f, \"armed_ns\": %.2f, \"overhead_pct\": %.2f, \
           \"disarmed_words\": %.3f, \"armed_words\": %.3f}"
          probe_dis_ns probe_arm_ns probe_pct probe_dis_words probe_arm_words );
      ( "stat_syscall",
        Printf.sprintf "{\"disarmed_ns\": %.2f, \"armed_ns\": %.2f, \"overhead_pct\": %.2f}"
          stat_dis_ns stat_arm_ns stat_pct );
      ("ring_recorded", string_of_int (Utrace.recorded ()));
      ("sketch_top", "[\n" ^ top_json ^ "\n  ]");
    ]
  in
  Utrace.reset ();
  Uprof.reset ();
  Bench_report.write ~experiment:"profile" figures

(* ------------------------------------------------------------------ *)
(* Batch: vectored submission/completion front-end (§3.9)              *)
(* ------------------------------------------------------------------ *)

module Batch = Dcache_syscalls.Batch

(* Warm all-hit submissions against sequential stat over the same working
   set; a deep-miss group against N sequential misses (stripe and
   component accounting); open-loop Poisson sojourn percentiles per batch
   size over the webserver and maildir path populations. *)
let batch_bench () =
  header
    "Batch - vectored submission/completion (§3.9).  One seqcount window,\n\
     one span mint and one counter set amortized across a run of fastpath\n\
     probes; misses deferred, sorted, resolved under a single write-lock\n\
     acquisition with grouped sibling walks and stripe-free DLHT inserts.";
  let sizes = [ 1; 8; 32; 128 ] in
  let files = 128 in
  let env = W.Env.ram Config.optimized in
  let p = env.W.Env.proc in
  let dir = "/www" in
  W.Webserver.setup p ~dir ~files;
  let paths =
    Array.init files (fun i -> Printf.sprintf "%s/doc%05d.html" dir (i + 1))
  in
  Array.iter (fun path -> ignore (ok "warm" (S.stat p path))) paths;

  subheader "warm all-hit throughput - sequential stat vs batched submit";
  let iters = if !quick then 20_000 else 100_000 in
  row "%-8s %12s %12s %9s %11s %13s\n" "batch" "seq ns/op" "batch ns/op" "speedup"
    "words/op" "windows/subm";
  let throughput =
    List.map
      (fun size ->
        (* both sides loop over the same [size]-path working set *)
        let idx = ref 0 in
        let seq_op () =
          ignore (S.stat p paths.(!idx));
          idx := (!idx + 1) mod size
        in
        seq_op ();
        let seq_ns = latency_ns ~iters:(max 1000 (iters / 4)) seq_op in
        let ring = Batch.create ~cap:size p in
        for k = 0 to size - 1 do
          ignore (Batch.push_stat ring paths.(k))
        done;
        let submit () = Batch.submit ring in
        submit ();
        let submits = max 64 (iters / size) in
        let batch_ns = latency_ns ~iters:submits submit /. float_of_int size in
        let words =
          Stats.minor_words_per_op ~iters:submits submit /. float_of_int size
        in
        let s0, _, w0 = Dcache_util.Profiler.batch_stats () in
        for _ = 1 to 100 do
          submit ()
        done;
        let s1, _, w1 = Dcache_util.Profiler.batch_stats () in
        let windows_per_submit =
          float_of_int (w1 - w0) /. float_of_int (max 1 (s1 - s0))
        in
        let speedup = seq_ns /. batch_ns in
        row "%-8d %12.1f %12.1f %8.2fx %11.3f %13.2f\n" size seq_ns batch_ns speedup
          words windows_per_submit;
        (size, seq_ns, batch_ns, speedup, words, windows_per_submit))
      sizes
  in
  List.iter
    (fun (size, _, _, speedup, words, _) ->
      if size >= 32 && speedup < 1.3 then
        row "  WARNING: batch %d speedup %.2fx below the 1.30x bound\n" size speedup;
      if size >= 32 && words > 0.005 then
        row "  WARNING: batch %d warm path allocates %.3f words/op\n" size words)
    throughput;

  subheader "deep-miss group - one write-locked phase vs N sequential misses";
  let depth = 8 in
  let misses = if !quick then 32 else 64 in
  let deep = "/" ^ String.concat "/" (List.init depth (Printf.sprintf "m%02d")) in
  ok "chain" (S.mkdir_p p deep);
  let leaves = Array.init misses (fun i -> Printf.sprintf "%s/leaf%03d" deep i) in
  Array.iter (fun leaf -> ok "leaf" (S.write_file p leaf "x")) leaves;
  let stripe_acquired () =
    let dc =
      match Dcache_vfs.Dcache.stripes (Kernel.dcache env.W.Env.kernel) with
      | Some tab -> fst (Dcache_util.Locktab.totals tab)
      | None -> 0
    in
    let dl =
      match Dcache_core.Dlht.of_namespace_opt (Kernel.init_ns env.W.Env.kernel) with
      | Some t -> (
        match Dcache_core.Dlht.locktab t with
        | Some tab -> fst (Dcache_util.Locktab.totals tab)
        | None -> 0)
      | None -> 0
    in
    dc + dl
  in
  let rwlocks () =
    let r, w = Dcache_util.Rwlock.acquisition_counts () in
    r + w
  in
  let miss_pass run =
    W.Env.drop_caches env;
    ignore (ok "warm chain" (S.stat p deep));
    let a0 = stripe_acquired () in
    let c0 = counter env "walk_components" in
    let l0 = rwlocks () in
    run ();
    let per x = float_of_int x /. float_of_int misses in
    (per (stripe_acquired () - a0), per (counter env "walk_components" - c0),
     per (rwlocks () - l0))
  in
  let seq_stripes, seq_comps, seq_locks =
    miss_pass (fun () ->
        Array.iter (fun leaf -> ignore (ok "miss" (S.stat p leaf))) leaves)
  in
  let miss_ring = Batch.create ~cap:misses p in
  let bat_stripes, bat_comps, bat_locks =
    miss_pass (fun () ->
        Batch.reset miss_ring;
        Array.iter (fun leaf -> ignore (Batch.push_stat miss_ring leaf)) leaves;
        Batch.submit miss_ring;
        for k = 0 to misses - 1 do
          if not (Batch.ok miss_ring k) then failwith "batch: deep miss failed"
        done)
  in
  row "%-12s %12s %14s %12s\n" "" "stripes/op" "components/op" "rwlocks/op";
  row "%-12s %12.3f %14.3f %12.3f\n" "sequential" seq_stripes seq_comps seq_locks;
  row "%-12s %12.3f %14.3f %12.3f\n" "batched" bat_stripes bat_comps bat_locks;
  if bat_stripes >= seq_stripes then
    row "  WARNING: batched misses took %.3f stripes/op (sequential %.3f)\n"
      bat_stripes seq_stripes;
  if bat_comps >= seq_comps then
    row "  WARNING: batched misses walked %.3f components/op (sequential %.3f)\n"
      bat_comps seq_comps;

  subheader "open-loop Poisson arrivals - per-op sojourn p50/p99 (virtual ns)";
  let mbox =
    W.Maildir.setup p ~root:"/mail" ~messages:(if !quick then 64 else 128) ~seed:7
  in
  ignore (W.Maildir.run_ops p mbox ~ops:5 ~seed:1);
  let mail_paths =
    ok "mail readdir" (S.readdir_path p "/mail/cur")
    |> List.map (fun (e : Dcache_fs.Fs_intf.dirent) ->
           "/mail/cur/" ^ e.Dcache_fs.Fs_intf.name)
    |> Array.of_list
  in
  Array.iter (fun path -> ignore (ok "warm mail" (S.stat p path))) mail_paths;
  let batches = if !quick then 200 else 800 in
  let rate = 500_000.0 in
  row "%-12s %6s %8s %12s %12s %12s\n" "workload" "batch" "ops" "p50 ns" "p99 ns"
    "mean ns";
  let open_loop =
    List.concat_map
      (fun (wl, wl_paths) ->
        List.map
          (fun size ->
            let n = Array.length wl_paths in
            let fill ring i = ignore (Batch.push_stat ring wl_paths.(i mod n)) in
            let ol =
              W.Runner.run_open_loop
                ~label:(Printf.sprintf "%s b=%d" wl size)
                ~seed:(size + 17) env ~rate_per_s:rate ~batch:size ~batches ~fill ()
            in
            row "%-12s %6d %8d %12d %12d %12.0f\n" wl size ol.W.Runner.ol_ops
              ol.W.Runner.ol_p50_ns ol.W.Runner.ol_p99_ns ol.W.Runner.ol_mean_ns;
            (wl, ol))
          sizes)
      [ ("webserver", paths); ("maildir", mail_paths) ]
  in
  let figures =
    [
      ("files", string_of_int files);
      ( "throughput",
        "[\n"
        ^ String.concat ",\n"
            (List.map
               (fun (size, seq_ns, batch_ns, speedup, words, wps) ->
                 Printf.sprintf
                   "    {\"batch\": %d, \"seq_ns_per_op\": %.2f, \
                    \"batch_ns_per_op\": %.2f, \"speedup\": %.3f, \
                    \"words_per_op\": %.3f, \"windows_per_submit\": %.3f}"
                   size seq_ns batch_ns speedup words wps)
               throughput)
        ^ "\n  ]" );
      ( "deep_miss",
        Printf.sprintf
          "{\"depth\": %d, \"misses\": %d,\n\
          \    \"sequential\": {\"stripes_per_op\": %.3f, \"components_per_op\": \
           %.3f, \"rwlocks_per_op\": %.3f},\n\
          \    \"batched\": {\"stripes_per_op\": %.3f, \"components_per_op\": \
           %.3f, \"rwlocks_per_op\": %.3f}}"
          depth misses seq_stripes seq_comps seq_locks bat_stripes bat_comps
          bat_locks );
      ( "open_loop",
        "[\n"
        ^ String.concat ",\n"
            (List.map
               (fun (wl, (ol : W.Runner.open_loop)) ->
                 Printf.sprintf
                   "    {\"workload\": %S, \"batch\": %d, \"rate_per_s\": %.0f, \
                    \"ops\": %d, \"p50_ns\": %d, \"p99_ns\": %d, \"mean_ns\": \
                    %.1f}"
                   wl ol.W.Runner.ol_batch ol.W.Runner.ol_rate_per_s
                   ol.W.Runner.ol_ops ol.W.Runner.ol_p50_ns ol.W.Runner.ol_p99_ns
                   ol.W.Runner.ol_mean_ns)
               open_loop)
        ^ "\n  ]" );
    ]
  in
  Bench_report.write ~experiment:"batch" figures

(* ------------------------------------------------------------------ *)
(* Listing: cache-fed readdir — promotion + dirent scratch (§5.1)      *)
(* ------------------------------------------------------------------ *)

(* A DIR_COMPLETE directory answers getdents from its cached children,
   and a warm fill through the per-process dirent scratch revalidates two
   seqcounts and copies names without allocating.  On the simulated disk
   the baseline re-parses on-disk dirent blocks on every listing, so the
   contrast is §5.1's: backend-fed listings against cache-fed ones, with
   the promotion path (fs-fed fill -> populate + set_complete under the
   parent stripe) exercised from a dropped cache. *)
let listing_bench () =
  header
    "Listing - cache-fed readdir (§5.1).  Warm DIR_COMPLETE fills served\n\
     from the per-process dirent scratch (seqcount-validated, 0 words/op)\n\
     vs the baseline's backend-fed listings on the simulated disk; cold\n\
     listings promote into the cache so the second call is already warm.";
  let sizes = [ 16; 64; 256 ] @ if !quick then [] else [ 1024 ] in
  let measure_backend size =
    let env = W.Env.disk Config.baseline in
    let p = env.W.Env.proc in
    let dir = Printf.sprintf "/b%d" size in
    W.Webserver.setup p ~dir ~files:size;
    ignore (ok "warm" (S.readdir_path p dir));
    env_latency_ns env ~iters:(max 50 (4000 / size)) (fun () ->
        ignore (ok "backend" (S.readdir_path p dir)))
  in
  let measure_warm size =
    let env = W.Env.disk Config.optimized in
    let p = env.W.Env.proc in
    let dir = Printf.sprintf "/o%d" size in
    W.Webserver.setup p ~dir ~files:size;
    (* mkdir-born directories are complete from birth; drop everything so
       the first listing takes the fs-fed fill and promotes (§5.1). *)
    W.Env.drop_caches env;
    let promoted0 = counter env "readdir_promoted" in
    ignore (ok "promote" (S.readdir_path p dir));
    let promoted = counter env "readdir_promoted" - promoted0 in
    let fd = ok "open" (S.openf p dir [ Proc.O_RDONLY; Proc.O_DIRECTORY ]) in
    let entries = S.readdir_fill p fd in
    let warm_ns =
      env_latency_ns env ~iters:(max 200 (20_000 / size)) (fun () ->
          ignore (S.readdir_fill p fd))
    in
    let words =
      Stats.minor_words_per_op ~iters:2000 (fun () -> ignore (S.readdir_fill p fd))
    in
    let warm0 = counter env "readdir_scratch_warm" in
    ignore (S.readdir_fill p fd);
    let warm_hits = counter env "readdir_scratch_warm" - warm0 in
    ok "close" (S.close p fd);
    (warm_ns, words, promoted, warm_hits, entries)
  in
  row "%-8s %13s %13s %9s %10s %9s\n" "files" "backend ns" "warm ns" "speedup"
    "words/op" "promoted";
  let runs =
    List.map
      (fun size ->
        let backend_ns = measure_backend size in
        let warm_ns, words, promoted, warm_hits, entries = measure_warm size in
        if warm_hits < 1 then row "  WARNING: steady-state fill missed the warm path\n";
        if entries < size then
          row "  WARNING: fill returned %d entries for %d files\n" entries size;
        let speedup = if warm_ns > 0.0 then backend_ns /. warm_ns else 0.0 in
        row "%-8d %13.1f %13.1f %8.1fx %10.2f %9d\n" size backend_ns warm_ns speedup
          words promoted;
        (size, backend_ns, warm_ns, speedup, words, promoted))
      sizes
  in
  let min_speedup =
    List.fold_left (fun acc (_, _, _, s, _, _) -> min acc s) infinity runs
  in
  let max_words = List.fold_left (fun acc (_, _, _, _, w, _) -> max acc w) 0.0 runs in
  row "min speedup %.1fx (acceptance bound: 5x), max words/op %.2f (bound: 0.00)\n"
    min_speedup max_words;
  if min_speedup < 5.0 then row "  WARNING: warm listing below the 5x bound\n";
  if max_words > 0.0 then row "  WARNING: warm fill allocated\n";
  let figures =
    [
      ( "runs",
        "[\n"
        ^ String.concat ",\n"
            (List.map
               (fun (size, backend_ns, warm_ns, speedup, words, promoted) ->
                 Printf.sprintf
                   "    {\"files\": %d, \"backend_ns\": %.1f, \"warm_fill_ns\": \
                    %.1f, \"speedup\": %.2f, \"warm_words_per_op\": %.3f, \
                    \"promotions\": %d}"
                   size backend_ns warm_ns speedup words promoted)
               runs)
        ^ "\n  ]" );
      ("min_speedup", Printf.sprintf "%.2f" min_speedup);
      ("max_warm_words_per_op", Printf.sprintf "%.3f" max_words);
    ]
  in
  Bench_report.write ~experiment:"listing" figures

(* ------------------------------------------------------------------ *)
(* Createstorm: probe-free creates + bounded negative lists (§5.2/§6.3)*)
(* ------------------------------------------------------------------ *)

(* Phase 1 (untar shape): unique creates into one directory.  A complete
   parent's absence verdict is authoritative, so the optimized kernel
   skips the baseline's backend existence probe — on extfs that probe is
   a linear dirent-block scan that grows with the directory, so the gap
   widens as the storm runs.  Phase 2 (§6.3): sweep [neg_list_cap] under
   a skewed absent-name stat storm and report hit rate, evictions and the
   occupancy bound the per-stripe LRU lists enforce. *)
let createstorm () =
  header
    "Createstorm - probe-free unique creates over a DIR_COMPLETE parent\n\
     (§5.2) and the §6.3 negative-list decay study: bounded per-stripe\n\
     LRU lists under an absent-name stat storm, swept over neg_list_cap.";
  let creates = if !quick then 3_000 else 12_000 in
  (* extfs directories top out at 12 direct blocks of dirents, so the
     full-scale storm spreads untar-style over several directories. *)
  let ndirs = (creates + 2_999) / 3_000 in
  let run_storm config =
    let env = W.Env.disk config in
    let p = env.W.Env.proc in
    for d = 0 to ndirs - 1 do
      ok "dir" (S.mkdir_p p (Printf.sprintf "/storm%d" d));
      ignore (ok "complete" (S.readdir_path p (Printf.sprintf "/storm%d" d)))
    done;
    let short0 = counter env "create_neg_shortcut" in
    let result =
      W.Runner.run env (fun () ->
          for i = 0 to creates - 1 do
            let path = Printf.sprintf "/storm%d/u%06d" (i mod ndirs) i in
            match S.openf p path [ Proc.O_CREAT; Proc.O_WRONLY ] with
            | Ok fd -> ignore (S.close p fd)
            | Error e -> failwith ("storm create: " ^ Dcache_types.Errno.to_string e)
          done)
    in
    (float_of_int creates /. seconds result, counter env "create_neg_shortcut" - short0)
  in
  subheader "unique-create throughput (complete parent)";
  let base_ops, base_short = run_storm Config.baseline in
  let opt_ops, opt_short = run_storm Config.optimized in
  let ratio = if base_ops > 0.0 then opt_ops /. base_ops else 0.0 in
  row "%-10s %14s %14s %14s\n" "kernel" "creates/s" "shortcuts" "";
  row "%-10s %14.0f %14d\n" "baseline" base_ops base_short;
  row "%-10s %14.0f %14d\n" "optimized" opt_ops opt_short;
  row "throughput ratio %.2fx (acceptance bound: 1.5x)\n" ratio;
  if ratio < 1.5 then row "  WARNING: create storm below the 1.5x bound\n";
  if opt_short < creates then
    row "  WARNING: only %d/%d creates took the probe-free shortcut\n" opt_short creates;

  subheader "negative-list decay (§6.3): absent-name storm vs neg_list_cap";
  let working_set = 512 in
  let probes = if !quick then 8_192 else 32_768 in
  let caps = [ 16; 64; 256; 1024; 0 ] in
  let sweep =
    List.map
      (fun cap ->
        (* Completeness off: absent names must be answered by cached
           negatives (or a backend probe), not by the parent's verdict. *)
        let config =
          {
            Config.optimized with
            Config.dir_completeness = false;
            dnlc_style_completeness = false;
            neg_list_cap = cap;
          }
        in
        let env = W.Env.disk config in
        let p = env.W.Env.proc in
        ok "dir" (S.mkdir_p p "/pop");
        for i = 0 to 63 do
          ok "pop" (S.write_file p (Printf.sprintf "/pop/real%02d" i) "x")
        done;
        let rng = Prng.create (0x6e65 + cap) in
        let hit0 =
          counter env "walk_negative_hit" + counter env "fastpath_negative_hit"
        in
        let result =
          W.Runner.run env (fun () ->
              for _ = 1 to probes do
                (* cubed uniform: a skewed re-reference pattern the LRU can
                   exploit once the cap covers the hot set *)
                let u = Prng.float rng 1.0 in
                let idx = int_of_float (float_of_int working_set *. (u *. u *. u)) in
                match S.stat p (Printf.sprintf "/pop/ghost%04d" idx) with
                | Error Dcache_types.Errno.ENOENT -> ()
                | Ok _ | Error _ -> failwith "storm stat: expected ENOENT"
              done)
        in
        let hits =
          counter env "walk_negative_hit" + counter env "fastpath_negative_hit" - hit0
        in
        let occ = Dcache_vfs.Dcache.neg_occupancy (Kernel.dcache env.W.Env.kernel) in
        let max_occ = Array.fold_left max 0 occ in
        let resident = Array.fold_left ( + ) 0 occ in
        let evicted = counter env "neg_evicted" in
        if cap > 0 && max_occ > cap then
          row "  WARNING: list occupancy %d exceeds the cap %d\n" max_occ cap;
        let ns_op = Int64.to_float result.W.Runner.total_ns /. float_of_int probes in
        (cap, ns_op, hits, evicted, resident, max_occ))
      caps
  in
  row "%-10s %10s %8s %10s %10s %9s\n" "cap" "ns/op" "hit%" "evicted" "resident"
    "max list";
  List.iter
    (fun (cap, ns_op, hits, evicted, resident, max_occ) ->
      row "%-10s %10.1f %7.1f%% %10d %10d %9d\n"
        (if cap = 0 then "unbounded" else string_of_int cap)
        ns_op
        (100.0 *. float_of_int hits /. float_of_int probes)
        evicted resident max_occ)
    sweep;
  let bounded =
    List.for_all (fun (cap, _, _, _, _, max_occ) -> cap = 0 || max_occ <= cap) sweep
  in
  let figures =
    [
      ("creates", string_of_int creates);
      ("baseline_creates_per_s", Printf.sprintf "%.0f" base_ops);
      ("optimized_creates_per_s", Printf.sprintf "%.0f" opt_ops);
      ("throughput_ratio", Printf.sprintf "%.3f" ratio);
      ("create_neg_shortcuts", string_of_int opt_short);
      ("occupancy_bounded", if bounded then "true" else "false");
      ( "neg_sweep",
        "[\n"
        ^ String.concat ",\n"
            (List.map
               (fun (cap, ns_op, hits, evicted, resident, max_occ) ->
                 Printf.sprintf
                   "    {\"cap\": %d, \"ns_per_op\": %.1f, \"hit_rate\": %.4f, \
                    \"evicted\": %d, \"resident\": %d, \"max_list\": %d}"
                   cap ns_op
                   (float_of_int hits /. float_of_int probes)
                   evicted resident max_occ)
               sweep)
        ^ "\n  ]" );
    ]
  in
  Bench_report.write ~experiment:"createstorm" figures

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1", fig1); ("fig2", fig2); ("fig3", fig3); ("fig6", fig6); ("fig7", fig7);
    ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("tab1", tab1); ("tab2", tab2);
    ("tab3", tab3); ("tab4", tab4); ("ablation", ablation); ("bechamel", bechamel);
    ("alloc", alloc); ("faults", faults); ("trace", trace); ("scale", scale_bench);
    ("deepmiss", deepmiss); ("churn", churn); ("coherence", coherence);
    ("profile", profile); ("batch", batch_bench); ("listing", listing_bench);
    ("createstorm", createstorm);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  if full then quick := false;
  if List.mem "--list" args then begin
    List.iter (fun (name, _) -> print_endline name) experiments;
    exit 0
  end;
  let wanted =
    List.filter (fun a -> not (String.length a > 2 && String.sub a 0 2 = "--")) args
  in
  let to_run =
    match wanted with
    | [] -> experiments
    | names ->
      List.map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S (try --list)\n" name;
            exit 1)
        names
  in
  Printf.printf "dcache reproduction benchmarks - %s scale\n"
    (if !quick then "quick (use --full for paper-scale parameters)" else "full");
  List.iter (fun (_, f) -> f ()) to_run
