(* Shared emitter for the BENCH_*.json evidence files.  Every experiment
   writes the same envelope — experiment id, quick/full mode, host core
   count — followed by its own figures.  Values arrive pre-rendered as
   JSON fragments, so arrays and nested objects keep whatever layout the
   experiment chose; the envelope is the only thing this module owns. *)

let json_string s = Printf.sprintf "%S" s

(* [write ~experiment figures] renders the envelope plus [figures] (an
   ordered [(name, json_fragment)] list) into BENCH_<experiment>.json and
   reports the write on stdout like every other bench row. *)
let write ~experiment figures =
  let fields =
    [
      ("experiment", json_string experiment);
      ("mode", json_string (if !Bu.quick then "quick" else "full"));
      ("host_cores", string_of_int (Domain.recommended_domain_count ()));
    ]
    @ figures
  in
  let render (k, v) = Printf.sprintf "  %S: %s" k v in
  let json = "{\n" ^ String.concat ",\n" (List.map render fields) ^ "\n}\n" in
  let file = "BENCH_" ^ experiment ^ ".json" in
  let oc = open_out file in
  output_string oc json;
  close_out oc;
  Bu.row "wrote %s\n" file
