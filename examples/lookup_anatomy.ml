(* Anatomy of a path lookup: where the time goes on the baseline walk vs
   the optimized fastpath (the paper's Fig. 3 view, live).

   Run with: dune exec examples/lookup_anatomy.exe *)

module Kernel = Dcache_syscalls.Kernel
module Proc = Dcache_syscalls.Proc
module S = Dcache_syscalls.Syscalls
module Config = Dcache_vfs.Config
module Phases = Dcache_vfs.Phases
module Lmbench = Dcache_workloads.Lmbench
module Env = Dcache_workloads.Env
module Trace = Dcache_util.Trace

let profile label config path =
  let env = Env.ram config in
  let proc = env.Env.proc in
  Lmbench.setup proc;
  ignore (S.stat proc path);
  (* warm: populate caches *)
  let iters = 20000 in
  Phases.enabled := true;
  Phases.reset ();
  for _ = 1 to iters do
    ignore (S.stat proc path)
  done;
  Phases.enabled := false;
  Printf.printf "%s  (path %s)\n" label path;
  let totals = Phases.totals () in
  let total =
    List.fold_left (fun acc (_, ns) -> acc +. Int64.to_float ns) 0.0 totals
  in
  List.iter
    (fun (phase, ns) ->
      let per = Int64.to_float ns /. float_of_int iters in
      let share = Int64.to_float ns /. total *. 100.0 in
      let bar = String.make (int_of_float (share /. 2.5)) '#' in
      Printf.printf "  %-24s %8.1f ns  %5.1f%% %s\n" (Phases.name phase) per share bar)
    totals;
  print_newline ()

(* The same lookups through the tracing layer: arm the event ring and the
   per-outcome latency histograms, mix hits with negatives and misses, and
   read the distribution + cause attribution back. *)
let observe () =
  let env = Env.ram Config.optimized in
  let proc = env.Env.proc in
  Lmbench.setup proc;
  let hit = "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF" in
  ignore (S.stat proc hit);
  Trace.reset ();
  Trace.arm ();
  for _ = 1 to 5000 do
    ignore (S.stat proc hit)
  done;
  for _ = 1 to 500 do
    ignore (S.stat proc "XXX/YYY/ZZZ/NNN") (* negative: cached absence *)
  done;
  for i = 1 to 50 do
    ignore (S.stat proc (Printf.sprintf "XXX/fresh%d" i)) (* cold misses *)
  done;
  Trace.disarm ();
  print_endline
    "The same lookups, observed: per-outcome-class latency histograms and\n\
     cause-attributed miss counters (tracing armed for this window only):";
  print_string (Trace.histograms_to_string ());
  print_string "cause breakdown:\n";
  print_string (Trace.causes_to_string ());
  Printf.printf "event ring: %d events recorded (Trace.dump_chrome () renders them\n"
    (Trace.recorded ());
  print_endline "as Chrome trace_event JSON for chrome://tracing / Perfetto)";
  Trace.reset ()

let () =
  let path = "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF" in
  print_endline "Where does a warm path lookup spend its time?\n";
  profile "BASELINE: component-at-a-time walk — every phase repeats per component"
    Config.baseline path;
  profile
    "OPTIMIZED: one signature + one DLHT probe + one PCC probe — only hashing stays linear"
    Config.optimized path;
  print_endline
    "The optimized kernel collapses per-component permission checks and hash\n\
     probes into constant-time memoized checks (paper sections 3.1-3.3); path\n\
     scanning & hashing remains proportional to path length, exactly as the\n\
     paper observes in Fig. 3.\n";
  observe ()
